// Package cntgrowth simulates carbon-nanotube growth on a substrate — the
// physical substrate under the paper's statistical models, and the engine
// behind the Fig. 3.1 reproduction.
//
// Two growth processes are provided:
//
//   - Directional: quartz-substrate directional CVD growth ([Kang 07,
//     Patil 09b]): CNTs run along the x (growth) direction in parallel
//     tracks. Track lateral positions follow the renewal pitch process
//     (package renewal uses the same law analytically); along each track
//     the tube breaks into segments of length ≈ LCNT with independent
//     metallic/semiconducting type per segment — the paper's "perfect
//     correlation within the CNT length, complete uncorrelation beyond".
//   - Uncorrelated: dispersed/solution growth: straight sticks with random
//     position, orientation spread and length; nearby devices share no
//     statistics.
//
// Geometry convention: everything is in nm; a CNFET channel is an axis-
// aligned rectangle whose current flows along x, so a CNT is part of the
// channel iff it crosses both vertical edges of the rectangle.
//
//yield:compute
package cntgrowth

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/cnfet/yieldlab/internal/dist"
)

// CNTType distinguishes metallic from semiconducting nanotubes.
type CNTType uint8

// CNT types. Roughly one third of grown CNTs are metallic (pm ≈ 33%), the
// paper's worst processing corner.
const (
	Semiconducting CNTType = iota
	Metallic
)

// String implements fmt.Stringer.
func (t CNTType) String() string {
	switch t {
	case Semiconducting:
		return "semiconducting"
	case Metallic:
		return "metallic"
	default:
		return fmt.Sprintf("CNTType(%d)", uint8(t))
	}
}

// Rect is an axis-aligned rectangle in substrate coordinates (nm).
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// Validate checks the rectangle is non-degenerate.
func (r Rect) Validate() error {
	if !(r.X1 > r.X0) || !(r.Y1 > r.Y0) {
		return fmt.Errorf("cntgrowth: degenerate rect [%g,%g]x[%g,%g]", r.X0, r.X1, r.Y0, r.Y1)
	}
	return nil
}

// Width returns the y-extent (the CNFET width direction).
func (r Rect) Width() float64 { return r.Y1 - r.Y0 }

// Length returns the x-extent (the channel/current direction).
func (r Rect) Length() float64 { return r.X1 - r.X0 }

// CNT is one grown nanotube, represented as a straight segment.
type CNT struct {
	// X0,Y0 – X1,Y1 are the endpoints; directional CNTs have Y0 == Y1.
	X0, Y0, X1, Y1 float64
	// Type is the electronic type.
	Type CNTType
	// Diameter in nm.
	Diameter float64
	// Track and Segment identify the growth track and LCNT segment for
	// directional growth (-1 for uncorrelated sticks).
	Track, Segment int
	// Removed marks tubes etched by the removal step.
	Removed bool
}

// crossesBothEdges reports whether the tube spans the full channel: it must
// intersect both vertical edges of rect inside the rect's y-range.
func (c CNT) crossesBothEdges(rect Rect) bool {
	x0, x1 := c.X0, c.X1
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if x0 > rect.X0 || x1 < rect.X1 {
		return false
	}
	yAt := func(x float64) float64 {
		if c.X1 == c.X0 {
			return c.Y0
		}
		t := (x - c.X0) / (c.X1 - c.X0)
		return c.Y0 + t*(c.Y1-c.Y0)
	}
	yl, yr := yAt(rect.X0), yAt(rect.X1)
	return yl >= rect.Y0 && yl <= rect.Y1 && yr >= rect.Y0 && yr <= rect.Y1
}

// Array is the result of growing CNTs over a region.
type Array struct {
	// Region is the grown area.
	Region Rect
	// CNTs holds every tube touching the region.
	CNTs []CNT
	// TrackYs holds the lateral track positions for directional growth
	// (nil for uncorrelated growth).
	TrackYs []float64
}

// Crossing returns the indices of all tubes (removed or not) forming a
// channel across rect.
func (a *Array) Crossing(rect Rect) []int {
	var out []int
	for i := range a.CNTs {
		if a.CNTs[i].crossesBothEdges(rect) {
			out = append(out, i)
		}
	}
	return out
}

// CountAll returns the number of tubes crossing rect before removal.
func (a *Array) CountAll(rect Rect) int { return len(a.Crossing(rect)) }

// CountUsable returns the number of surviving semiconducting tubes crossing
// rect — the conducting channels of a CNFET placed there.
func (a *Array) CountUsable(rect Rect) int {
	n := 0
	for _, i := range a.Crossing(rect) {
		c := &a.CNTs[i]
		if c.Type == Semiconducting && !c.Removed {
			n++
		}
	}
	return n
}

// CountSurvivingMetallic returns the number of metallic tubes that escaped
// removal and cross rect (the noise-margin hazard of [Zhang 09b]).
func (a *Array) CountSurvivingMetallic(rect Rect) int {
	n := 0
	for _, i := range a.Crossing(rect) {
		c := &a.CNTs[i]
		if c.Type == Metallic && !c.Removed {
			n++
		}
	}
	return n
}

// DensityPerUM returns the average track density (tracks per µm of lateral
// extent) of a directional array.
func (a *Array) DensityPerUM() float64 {
	if len(a.TrackYs) == 0 {
		return 0
	}
	return float64(len(a.TrackYs)) / a.Region.Width() * 1000
}

// Directional grows aligned CNTs in parallel tracks.
type Directional struct {
	// Pitch is the inter-track spacing law in nm (e.g. the calibrated
	// truncated normal with mean 4 nm).
	Pitch dist.Continuous
	// PMetallic is the per-segment probability of a metallic tube.
	PMetallic float64
	// LengthNM is LCNT, the (mean) tube length; the paper uses 200 µm
	// [Kang 07, Patil 09b].
	LengthNM float64
	// LengthJitterFrac is an extension knob (the paper defers CNT length
	// variation to future work): segment lengths vary uniformly by
	// ±jitter·LengthNM. Zero reproduces the paper's fixed-length model.
	LengthJitterFrac float64
	// Diameter is the tube diameter law in nm; nil uses a fixed 1.5 nm.
	Diameter dist.Continuous
}

// Validate checks growth parameters.
func (g Directional) Validate() error {
	if g.Pitch == nil {
		return errors.New("cntgrowth: nil pitch distribution")
	}
	if g.PMetallic < 0 || g.PMetallic > 1 || math.IsNaN(g.PMetallic) {
		return fmt.Errorf("cntgrowth: PMetallic %g out of [0,1]", g.PMetallic)
	}
	if !(g.LengthNM > 0) {
		return fmt.Errorf("cntgrowth: LengthNM %g must be positive", g.LengthNM)
	}
	if g.LengthJitterFrac < 0 || g.LengthJitterFrac >= 1 {
		return fmt.Errorf("cntgrowth: LengthJitterFrac %g out of [0,1)", g.LengthJitterFrac)
	}
	return nil
}

// Grow implements the directional growth process over region.
func (g Directional) Grow(r *rand.Rand, region Rect) (*Array, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := region.Validate(); err != nil {
		return nil, err
	}
	a := &Array{Region: region}
	// Lateral track positions: equilibrium renewal via burn-in from well
	// below the region.
	mean := g.Pitch.Mean()
	y := region.Y0 - 50*mean
	for y < region.Y0 {
		y += g.Pitch.Sample(r)
	}
	track := 0
	for ; y <= region.Y1; track++ {
		a.TrackYs = append(a.TrackYs, y)
		g.growTrack(r, a, track, y, region)
		y += g.Pitch.Sample(r)
	}
	return a, nil
}

// growTrack lays LCNT segments along one track, with a random phase so
// segment boundaries are not aligned across tracks.
func (g Directional) growTrack(r *rand.Rand, a *Array, track int, y float64, region Rect) {
	segLen := func() float64 {
		if g.LengthJitterFrac == 0 {
			return g.LengthNM
		}
		return g.LengthNM * (1 + g.LengthJitterFrac*(2*r.Float64()-1))
	}
	// Random phase: the first boundary left of the region.
	x := region.X0 - r.Float64()*g.LengthNM
	for seg := 0; x < region.X1; seg++ {
		l := segLen()
		x1 := x + l
		typ := Semiconducting
		if r.Float64() < g.PMetallic {
			typ = Metallic
		}
		dia := 1.5
		if g.Diameter != nil {
			dia = g.Diameter.Sample(r)
		}
		a.CNTs = append(a.CNTs, CNT{
			X0: x, Y0: y, X1: x1, Y1: y,
			Type: typ, Diameter: dia,
			Track: track, Segment: seg,
		})
		x = x1
	}
}

// Uncorrelated grows randomly dispersed sticks (e.g. solution deposition):
// no spatial correlation between nearby devices.
type Uncorrelated struct {
	// DensityPerUM2 is the stick density in tubes per µm².
	DensityPerUM2 float64
	// PMetallic as for Directional.
	PMetallic float64
	// LengthNM is the mean stick length; sticks are much shorter than
	// directional tubes (≈ 1–5 µm).
	LengthNM float64
	// LengthSpreadFrac varies stick length uniformly by ±spread·LengthNM.
	LengthSpreadFrac float64
	// AngleSpreadRad is the maximum deviation from the x axis; π/2 makes
	// the orientation isotropic.
	AngleSpreadRad float64
	// Diameter as for Directional; nil uses 1.5 nm.
	Diameter dist.Continuous
}

// Validate checks growth parameters.
func (g Uncorrelated) Validate() error {
	if !(g.DensityPerUM2 > 0) {
		return fmt.Errorf("cntgrowth: density %g must be positive", g.DensityPerUM2)
	}
	if g.PMetallic < 0 || g.PMetallic > 1 || math.IsNaN(g.PMetallic) {
		return fmt.Errorf("cntgrowth: PMetallic %g out of [0,1]", g.PMetallic)
	}
	if !(g.LengthNM > 0) {
		return fmt.Errorf("cntgrowth: LengthNM %g must be positive", g.LengthNM)
	}
	if g.LengthSpreadFrac < 0 || g.LengthSpreadFrac >= 1 {
		return fmt.Errorf("cntgrowth: LengthSpreadFrac %g out of [0,1)", g.LengthSpreadFrac)
	}
	if g.AngleSpreadRad < 0 || g.AngleSpreadRad > math.Pi/2 {
		return fmt.Errorf("cntgrowth: AngleSpreadRad %g out of [0,π/2]", g.AngleSpreadRad)
	}
	return nil
}

// Grow implements the uncorrelated stick process: a Poisson number of stick
// centers lands in an inflated region (so edge effects do not bias density),
// each with random orientation and length.
func (g Uncorrelated) Grow(r *rand.Rand, region Rect) (*Array, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := region.Validate(); err != nil {
		return nil, err
	}
	a := &Array{Region: region}
	// Inflate by the maximum stick half-length so sticks centered outside
	// but reaching in are represented.
	maxHalf := g.LengthNM * (1 + g.LengthSpreadFrac) / 2
	inflated := Rect{
		X0: region.X0 - maxHalf, Y0: region.Y0 - maxHalf,
		X1: region.X1 + maxHalf, Y1: region.Y1 + maxHalf,
	}
	areaUM2 := inflated.Width() * inflated.Length() / 1e6
	lambda := g.DensityPerUM2 * areaUM2
	n := samplePoisson(r, lambda)
	for i := 0; i < n; i++ {
		cx := inflated.X0 + r.Float64()*inflated.Length()
		cy := inflated.Y0 + r.Float64()*inflated.Width()
		angle := (2*r.Float64() - 1) * g.AngleSpreadRad
		l := g.LengthNM
		if g.LengthSpreadFrac > 0 {
			l *= 1 + g.LengthSpreadFrac*(2*r.Float64()-1)
		}
		dx := math.Cos(angle) * l / 2
		dy := math.Sin(angle) * l / 2
		typ := Semiconducting
		if r.Float64() < g.PMetallic {
			typ = Metallic
		}
		dia := 1.5
		if g.Diameter != nil {
			dia = g.Diameter.Sample(r)
		}
		a.CNTs = append(a.CNTs, CNT{
			X0: cx - dx, Y0: cy - dy, X1: cx + dx, Y1: cy + dy,
			Type: typ, Diameter: dia,
			Track: -1, Segment: -1,
		})
	}
	return a, nil
}

// samplePoisson draws a Poisson variate; Knuth's product method for small
// means, normal approximation above 500 where the product underflows.
func samplePoisson(r *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 500 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*r.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Removal models the VMR-style m-CNT removal step [Patil 09c]: metallic
// tubes are removed with probability PRemoveMetallic; semiconducting tubes
// are lost collaterally with probability PRemoveSemi.
type Removal struct {
	PRemoveMetallic float64
	PRemoveSemi     float64
}

// Validate checks the removal probabilities.
func (rm Removal) Validate() error {
	if rm.PRemoveMetallic < 0 || rm.PRemoveMetallic > 1 || math.IsNaN(rm.PRemoveMetallic) {
		return fmt.Errorf("cntgrowth: PRemoveMetallic %g out of [0,1]", rm.PRemoveMetallic)
	}
	if rm.PRemoveSemi < 0 || rm.PRemoveSemi > 1 || math.IsNaN(rm.PRemoveSemi) {
		return fmt.Errorf("cntgrowth: PRemoveSemi %g out of [0,1]", rm.PRemoveSemi)
	}
	return nil
}

// Apply flips Removed flags in place. A tube already removed stays removed.
func (rm Removal) Apply(r *rand.Rand, a *Array) error {
	if err := rm.Validate(); err != nil {
		return err
	}
	if a == nil {
		return errors.New("cntgrowth: nil array")
	}
	for i := range a.CNTs {
		c := &a.CNTs[i]
		switch c.Type {
		case Metallic:
			if r.Float64() < rm.PRemoveMetallic {
				c.Removed = true
			}
		case Semiconducting:
			if r.Float64() < rm.PRemoveSemi {
				c.Removed = true
			}
		}
	}
	return nil
}
