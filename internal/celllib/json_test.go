package celllib

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	for _, build := range []func() (*Library, error){NangateLike45, Commercial65} {
		orig, err := build()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := orig.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := ReadJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Name != orig.Name || len(loaded.Cells) != len(orig.Cells) {
			t.Fatalf("%s: round trip lost cells: %d vs %d", orig.Name, len(loaded.Cells), len(orig.Cells))
		}
		for i := range orig.Cells {
			a, b := &orig.Cells[i], &loaded.Cells[i]
			if a.Name != b.Name || a.WidthNM != b.WidthNM || len(a.Transistors) != len(b.Transistors) {
				t.Fatalf("cell %s changed in round trip", a.Name)
			}
			for j := range a.Transistors {
				if a.Transistors[j] != b.Transistors[j] {
					t.Fatalf("cell %s transistor %d changed", a.Name, j)
				}
			}
		}
	}
}

func TestJSONErrors(t *testing.T) {
	lib, _ := NangateLike45()
	if err := lib.WriteJSON(nil); err == nil {
		t.Error("nil writer")
	}
	if _, err := ReadJSON(nil); err == nil {
		t.Error("nil reader")
	}
	if _, err := ReadJSON(strings.NewReader("{broken")); err == nil {
		t.Error("malformed JSON")
	}
	// Valid JSON but invalid geometry must be rejected.
	if _, err := ReadJSON(strings.NewReader(
		`{"Name":"x","NodeNM":45,"Cells":[{"Name":"BAD","WidthNM":0,"HeightNM":1}]}`)); err == nil {
		t.Error("invalid geometry should be rejected")
	}
	// Unknown fields are rejected (format discipline).
	if _, err := ReadJSON(strings.NewReader(`{"Name":"x","Bogus":1,"Cells":[]}`)); err == nil {
		t.Error("unknown field should be rejected")
	}
	// Serializing an invalid library is refused.
	bad := &Library{Cells: []Cell{{Name: ""}}}
	var buf bytes.Buffer
	if err := bad.WriteJSON(&buf); err == nil {
		t.Error("invalid library serialization should fail")
	}
}
