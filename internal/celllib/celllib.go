// Package celllib models CNFET standard-cell libraries at the fidelity the
// paper's Section 3.2/3.3 analysis needs: per-cell transistor lists with
// active-region geometry (horizontal extent, lateral offset, width), pins,
// and library-level statistics.
//
// Two synthetic libraries are generated deterministically:
//
//   - NangateLike45: 134 cells mirroring the (CNFET-modified [Bobba 09])
//     Nangate 45 nm Open Cell Library of the paper's case study;
//   - Commercial65: 775 cells mirroring the commercial 65 nm library of
//     Table 2, with a larger share of folded, multi-offset cells.
//
// The libraries are substitutes for the real (proprietary) layouts; their
// free parameters — which cells fold their active regions, by how much, and
// the lateral offset each cell family uses — are calibrated so the paper's
// published aggregates emerge from the geometry (see DESIGN.md §2/§5):
// 4/134 Nangate cells pay area under one-band alignment (max 14 %),
// AOI222_X1 widens by ≈ 9 %, ~20 % of the 65 nm library pays 10–70 %, and
// the library-wide offset spread reproduces Table 1's 26.5× partial-
// correlation benefit.
//
//yield:compute
package celllib

import (
	"errors"
	"fmt"
	"sort"
)

// DeviceType distinguishes pull-down from pull-up devices.
type DeviceType uint8

// Device types.
const (
	NFET DeviceType = iota
	PFET
)

// String implements fmt.Stringer.
func (d DeviceType) String() string {
	switch d {
	case NFET:
		return "nfet"
	case PFET:
		return "pfet"
	default:
		return fmt.Sprintf("DeviceType(%d)", uint8(d))
	}
}

// Transistor is one CNFET inside a cell.
type Transistor struct {
	// Name identifies the device within the cell (e.g. "MN2").
	Name string
	// Type is NFET or PFET.
	Type DeviceType
	// WidthNM is the channel width (the CNT-count-critical dimension).
	WidthNM float64
	// Column is the poly column the gate sits on.
	Column int
	// YOffsetNM is the lateral offset of the active region's lower edge,
	// measured from the cell's device-row origin (per device type). CNTs
	// run horizontally, so two transistors in a placement row share CNTs
	// exactly when their [YOffset, YOffset+Width) windows overlap.
	YOffsetNM float64
}

// ActiveRegion is a contiguous diffusion rectangle hosting one or more
// same-type, same-offset transistors.
type ActiveRegion struct {
	Type DeviceType
	// X0NM and X1NM bound the region horizontally within the cell.
	X0NM, X1NM float64
	// YOffsetNM is the lateral offset of the lower edge.
	YOffsetNM float64
	// WidthNM is the lateral size (transistor width).
	WidthNM float64
	// Transistors indexes the cell's transistor list.
	Transistors []int
}

// Pin is a cell I/O pin; the aligned-active transform retains pin
// locations to bound the inter-cell routing impact (Section 3.3).
type Pin struct {
	Name   string
	XNM    float64
	YNM    float64
	Signal string // "input", "output", "clock"
}

// Cell is one standard cell.
type Cell struct {
	Name string
	// Function is the logic family ("INV", "AOI222", "DFF", ...).
	Function string
	// Drive is the strength suffix (1, 2, 4, ...).
	Drive int
	// WidthNM and HeightNM are the cell dimensions.
	WidthNM, HeightNM float64
	// PolyPitchNM is the column pitch used for geometry synthesis.
	PolyPitchNM float64
	// Transistors lists all devices.
	Transistors []Transistor
	// Pins lists the I/O pins.
	Pins []Pin
	// Sequential marks flip-flops and latches.
	Sequential bool
}

// Validate checks geometric sanity.
func (c *Cell) Validate() error {
	if c.Name == "" {
		return errors.New("celllib: cell without name")
	}
	if !(c.WidthNM > 0) || !(c.HeightNM > 0) {
		return fmt.Errorf("celllib: cell %s has non-positive dimensions", c.Name)
	}
	for i, t := range c.Transistors {
		if !(t.WidthNM > 0) {
			return fmt.Errorf("celllib: cell %s transistor %d has width %g", c.Name, i, t.WidthNM)
		}
		if t.Column < 0 {
			return fmt.Errorf("celllib: cell %s transistor %d has negative column", c.Name, i)
		}
		if t.YOffsetNM < 0 {
			return fmt.Errorf("celllib: cell %s transistor %d has negative offset", c.Name, i)
		}
		x := c.columnX1(t.Column)
		if x > c.WidthNM+1e-9 {
			return fmt.Errorf("celllib: cell %s transistor %d column %d exceeds cell width", c.Name, i, t.Column)
		}
	}
	return nil
}

// columnX0 returns the left edge of the active landing pad of a column.
func (c *Cell) columnX0(col int) float64 {
	return float64(col)*c.PolyPitchNM + c.PolyPitchNM*0.25
}

// columnX1 returns the right edge of the active landing pad of a column.
func (c *Cell) columnX1(col int) float64 {
	return float64(col)*c.PolyPitchNM + c.PolyPitchNM*1.0
}

// ActiveRegions derives the diffusion rectangles: same-type transistors at
// the same lateral offset on adjacent columns merge into one region.
func (c *Cell) ActiveRegions() []ActiveRegion {
	type key struct {
		typ DeviceType
		off float64
		w   float64
	}
	groups := make(map[key][]int)
	for i, t := range c.Transistors {
		k := key{t.Type, t.YOffsetNM, t.WidthNM}
		groups[k] = append(groups[k], i)
	}
	var out []ActiveRegion
	for k, idxs := range groups {
		sort.Slice(idxs, func(a, b int) bool {
			return c.Transistors[idxs[a]].Column < c.Transistors[idxs[b]].Column
		})
		// Split non-adjacent columns into separate regions.
		start := 0
		for i := 1; i <= len(idxs); i++ {
			if i < len(idxs) && c.Transistors[idxs[i]].Column <= c.Transistors[idxs[i-1]].Column+1 {
				continue
			}
			run := idxs[start:i]
			out = append(out, ActiveRegion{
				Type:        k.typ,
				X0NM:        c.columnX0(c.Transistors[run[0]].Column),
				X1NM:        c.columnX1(c.Transistors[run[len(run)-1]].Column),
				YOffsetNM:   k.off,
				WidthNM:     k.w,
				Transistors: append([]int(nil), run...),
			})
			start = i
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Type != out[b].Type {
			return out[a].Type < out[b].Type
		}
		if out[a].X0NM != out[b].X0NM {
			return out[a].X0NM < out[b].X0NM
		}
		return out[a].YOffsetNM < out[b].YOffsetNM
	})
	return out
}

// MinNFETWidth returns the smallest n-type transistor width in the cell
// (0 for cells without NFETs, e.g. fill cells).
func (c *Cell) MinNFETWidth() float64 {
	min := 0.0
	for _, t := range c.Transistors {
		if t.Type != NFET {
			continue
		}
		if min == 0 || t.WidthNM < min {
			min = t.WidthNM
		}
	}
	return min
}

// Library is a named set of cells.
type Library struct {
	Name string
	// NodeNM is the technology node (45 or 65).
	NodeNM float64
	Cells  []Cell
}

// Validate checks every cell and name uniqueness.
func (l *Library) Validate() error {
	seen := make(map[string]bool, len(l.Cells))
	for i := range l.Cells {
		c := &l.Cells[i]
		if err := c.Validate(); err != nil {
			return err
		}
		if seen[c.Name] {
			return fmt.Errorf("celllib: duplicate cell name %s", c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// Cell returns the named cell or an error.
func (l *Library) Cell(name string) (*Cell, error) {
	for i := range l.Cells {
		if l.Cells[i].Name == name {
			return &l.Cells[i], nil
		}
	}
	return nil, fmt.Errorf("celllib: no cell %q in library %s", name, l.Name)
}

// TransistorCount sums devices across the library.
func (l *Library) TransistorCount() int {
	n := 0
	for i := range l.Cells {
		n += len(l.Cells[i].Transistors)
	}
	return n
}
