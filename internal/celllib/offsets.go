package celllib

import (
	"errors"
	"fmt"
	"sort"

	"github.com/cnfet/yieldlab/internal/rowyield"
)

// CriticalNFETOffsets extracts the lateral offset distribution of critical
// (below-Wmin) n-type devices across a library, weighted by per-cell usage
// counts (nil usage weighs every cell equally). This is the OffsetDist that
// drives the DirectionalUnaligned scenario of Table 1: the more lateral
// positions the library scatters its small devices over, the less CNT
// sharing an unmodified library gets for free.
func CriticalNFETOffsets(lib *Library, usage map[string]float64, wminNM float64) (rowyield.OffsetDist, error) {
	if lib == nil {
		return rowyield.OffsetDist{}, errors.New("celllib: nil library")
	}
	if !(wminNM > 0) {
		return rowyield.OffsetDist{}, fmt.Errorf("celllib: Wmin %g must be positive", wminNM)
	}
	weights := make(map[float64]float64)
	for i := range lib.Cells {
		c := &lib.Cells[i]
		w := 1.0
		if usage != nil {
			w = usage[c.Name]
			if w == 0 {
				continue
			}
		}
		for _, t := range c.Transistors {
			if t.Type != NFET || t.WidthNM >= wminNM {
				continue
			}
			weights[t.YOffsetNM] += w
		}
	}
	if len(weights) == 0 {
		return rowyield.OffsetDist{}, errors.New("celllib: no critical n-type devices below Wmin")
	}
	offsets := make([]float64, 0, len(weights))
	for off := range weights {
		offsets = append(offsets, off)
	}
	sort.Float64s(offsets)
	probs := make([]float64, len(offsets))
	for i, off := range offsets {
		probs[i] = weights[off]
	}
	return rowyield.NewOffsetDist(offsets, probs)
}
