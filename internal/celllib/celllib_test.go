package celllib

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNangateLike45Shape(t *testing.T) {
	lib, err := NangateLike45()
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Cells) != 134 {
		t.Fatalf("cells: %d", len(lib.Cells))
	}
	if err := lib.Validate(); err != nil {
		t.Fatal(err)
	}
	if lib.TransistorCount() < 800 {
		t.Fatalf("suspiciously few transistors: %d", lib.TransistorCount())
	}
	// The Fig. 3.2 cell must exist.
	aoi, err := lib.Cell("AOI222_X1")
	if err != nil {
		t.Fatal(err)
	}
	if aoi.Function != "AOI222" || aoi.Drive != 1 {
		t.Fatalf("AOI222_X1 metadata: %+v", aoi)
	}
	// It must contain a folded (stacked) device pair: two same-type
	// devices in one column at different offsets.
	found := false
	for _, a := range aoi.Transistors {
		for _, b := range aoi.Transistors {
			if a.Name != b.Name && a.Type == b.Type && a.Column == b.Column && a.YOffsetNM != b.YOffsetNM {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("AOI222_X1 should have stacked devices")
	}
}

func TestCommercial65Shape(t *testing.T) {
	lib, err := Commercial65()
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Cells) != 775 {
		t.Fatalf("cells: %d", len(lib.Cells))
	}
	if err := lib.Validate(); err != nil {
		t.Fatal(err)
	}
	if lib.NodeNM != 65 {
		t.Fatalf("node: %v", lib.NodeNM)
	}
	// Scaled geometry: the 65 nm INV_X1 is 65/45 bigger than the 45 nm one.
	n45, _ := NangateLike45()
	a, _ := n45.Cell("INV_X1")
	b, err := lib.Cell("INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.WidthNM/a.WidthNM-65.0/45) > 1e-9 {
		t.Fatalf("scale: %v", b.WidthNM/a.WidthNM)
	}
}

func TestLibraryDeterminism(t *testing.T) {
	a, err := NangateLike45()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NangateLike45()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cells {
		if a.Cells[i].Name != b.Cells[i].Name || a.Cells[i].WidthNM != b.Cells[i].WidthNM {
			t.Fatalf("generator not deterministic at %d", i)
		}
		for j := range a.Cells[i].Transistors {
			if a.Cells[i].Transistors[j] != b.Cells[i].Transistors[j] {
				t.Fatalf("transistor mismatch in %s", a.Cells[i].Name)
			}
		}
	}
}

func TestOffsetsOnGrid(t *testing.T) {
	lib, err := NangateLike45()
	if err != nil {
		t.Fatal(err)
	}
	for i := range lib.Cells {
		for _, tr := range lib.Cells[i].Transistors {
			base := math.Mod(tr.YOffsetNM, OffsetGridNM)
			if base > 1e-9 && math.Abs(base-OffsetGridNM) > 1e-9 {
				t.Fatalf("%s %s offset %v not on %v grid", lib.Cells[i].Name, tr.Name, tr.YOffsetNM, OffsetGridNM)
			}
		}
	}
}

func TestNoStackingViolationsInGeneratedLibraries(t *testing.T) {
	for _, build := range []func() (*Library, error){NangateLike45, Commercial65} {
		lib, err := build()
		if err != nil {
			t.Fatal(err)
		}
		for ci := range lib.Cells {
			c := &lib.Cells[ci]
			for a := 0; a < len(c.Transistors); a++ {
				for b := a + 1; b < len(c.Transistors); b++ {
					ta, tb := c.Transistors[a], c.Transistors[b]
					if ta.Type != tb.Type || ta.Column != tb.Column {
						continue
					}
					if ta.YOffsetNM < tb.YOffsetNM+tb.WidthNM && tb.YOffsetNM < ta.YOffsetNM+ta.WidthNM {
						t.Fatalf("%s/%s: %s and %s overlap", lib.Name, c.Name, ta.Name, tb.Name)
					}
				}
			}
		}
	}
}

func TestActiveRegionsMergeAdjacent(t *testing.T) {
	lib, _ := NangateLike45()
	// NAND2_X1: two same-width devices per type on adjacent columns → one
	// region per type.
	c, err := lib.Cell("NAND2_X1")
	if err != nil {
		t.Fatal(err)
	}
	regions := c.ActiveRegions()
	nRegions := 0
	for _, r := range regions {
		if r.Type == NFET {
			nRegions++
			if len(r.Transistors) != 2 {
				t.Fatalf("NAND2 n-region should hold both devices: %+v", r)
			}
			if !(r.X1NM > r.X0NM) {
				t.Fatalf("degenerate region: %+v", r)
			}
		}
	}
	if nRegions != 1 {
		t.Fatalf("NAND2 n-regions: %d", nRegions)
	}
	// AOI222_X1 has folds: more than one n-region.
	aoi, _ := lib.Cell("AOI222_X1")
	nRegions = 0
	for _, r := range aoi.ActiveRegions() {
		if r.Type == NFET {
			nRegions++
		}
	}
	if nRegions < 2 {
		t.Fatalf("AOI222_X1 n-regions: %d", nRegions)
	}
}

func TestMinNFETWidth(t *testing.T) {
	lib, _ := NangateLike45()
	dff, _ := lib.Cell("DFF_X1")
	if w := dff.MinNFETWidth(); w != MinWidthNM {
		t.Fatalf("DFF min width: %v", w)
	}
	fill, _ := lib.Cell("FILLCELL_X1")
	if w := fill.MinNFETWidth(); w != 0 {
		t.Fatalf("fill cell min width: %v", w)
	}
	inv, _ := lib.Cell("INV_X1")
	if w := inv.MinNFETWidth(); w != 180 {
		t.Fatalf("INV_X1 output width: %v", w)
	}
}

func TestLibraryCellLookup(t *testing.T) {
	lib, _ := NangateLike45()
	if _, err := lib.Cell("NO_SUCH_CELL"); err == nil {
		t.Fatal("missing cell should error")
	}
}

func TestCellValidateCatchesBadGeometry(t *testing.T) {
	bad := Cell{Name: "", WidthNM: 100, HeightNM: 100}
	if bad.Validate() == nil {
		t.Error("empty name")
	}
	bad = Cell{Name: "X", WidthNM: 0, HeightNM: 100}
	if bad.Validate() == nil {
		t.Error("zero width")
	}
	bad = Cell{Name: "X", WidthNM: 100, HeightNM: 100, PolyPitchNM: 190,
		Transistors: []Transistor{{Name: "M", WidthNM: 10, Column: 5}}}
	if bad.Validate() == nil {
		t.Error("column outside cell")
	}
	bad = Cell{Name: "X", WidthNM: 400, HeightNM: 100, PolyPitchNM: 190,
		Transistors: []Transistor{{Name: "M", WidthNM: -1, Column: 0}}}
	if bad.Validate() == nil {
		t.Error("negative device width")
	}
	dup := Library{Cells: []Cell{
		{Name: "A", WidthNM: 1, HeightNM: 1},
		{Name: "A", WidthNM: 1, HeightNM: 1},
	}}
	if dup.Validate() == nil {
		t.Error("duplicate names")
	}
}

func TestCriticalNFETOffsets(t *testing.T) {
	lib, _ := NangateLike45()
	od, err := CriticalNFETOffsets(lib, nil, 109)
	if err != nil {
		t.Fatal(err)
	}
	// Library-wide, most of the 14 grid slots should be in use — the
	// premise of the Table 1 partial-correlation scenario.
	if od.DistinctCount() < 10 {
		t.Fatalf("distinct offsets: %d, want most of the %d slots", od.DistinctCount(), OffsetSlots)
	}
	// Usage weighting restricted to one cell collapses the distribution.
	dff, _ := lib.Cell("DFF_X1")
	odOne, err := CriticalNFETOffsets(lib, map[string]float64{"DFF_X1": 1}, 109)
	if err != nil {
		t.Fatal(err)
	}
	if odOne.DistinctCount() != 1 {
		t.Fatalf("single-cell offsets: %d (cell %s)", odOne.DistinctCount(), dff.Name)
	}
	if _, err := CriticalNFETOffsets(nil, nil, 109); err == nil {
		t.Error("nil library")
	}
	if _, err := CriticalNFETOffsets(lib, nil, 0); err == nil {
		t.Error("zero Wmin")
	}
	if _, err := CriticalNFETOffsets(lib, nil, 1); err == nil {
		t.Error("nothing critical below 1 nm")
	}
}

// Property: every generated cell name is FUNCTION_Xdrive.
func TestQuickCellNaming(t *testing.T) {
	lib, _ := NangateLike45()
	f := func(idx uint16) bool {
		c := lib.Cells[int(idx)%len(lib.Cells)]
		return strings.Contains(c.Name, "_X") && strings.HasPrefix(c.Name, c.Function)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
