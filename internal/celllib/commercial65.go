package celllib

import (
	"fmt"
	"hash/fnv"
	"math"
)

// commercial65Scale is the linear scale of the 65 nm library relative to
// the 45 nm reference geometry.
const commercial65Scale = 65.0 / 45.0

// commercial65Functions builds the function families of the synthetic
// commercial 65 nm library: a superset of the 45 nm families with deeper
// fan-in variants, the usual suspects of a production library.
func commercial65Functions() []archetype {
	var out []archetype
	add := func(a archetype) { out = append(out, a) }

	fullDrives := []int{1, 2, 3, 4, 6, 8, 12, 16}
	add(archetype{function: "INV", drives: fullDrives, nDevices: 1})
	add(archetype{function: "BUF", drives: fullDrives, nDevices: 2})
	add(archetype{function: "CLKBUF", drives: fullDrives, nDevices: 2})
	add(archetype{function: "CLKINV", drives: fullDrives, nDevices: 1})
	add(archetype{function: "TBUF", drives: fullDrives, nDevices: 4})
	add(archetype{function: "TINV", drives: fullDrives, nDevices: 4})
	add(archetype{function: "DLY", drives: fullDrives, nDevices: 4})
	for fanin := 2; fanin <= 6; fanin++ {
		add(archetype{function: fmt.Sprintf("NAND%d", fanin), drives: fullDrives, nDevices: fanin, complex: fanin >= 5})
		add(archetype{function: fmt.Sprintf("NOR%d", fanin), drives: fullDrives, nDevices: fanin, complex: fanin >= 5})
		add(archetype{function: fmt.Sprintf("AND%d", fanin), drives: fullDrives, nDevices: fanin + 1, complex: fanin >= 5})
		add(archetype{function: fmt.Sprintf("OR%d", fanin), drives: fullDrives, nDevices: fanin + 1, complex: fanin >= 5})
	}
	add(archetype{function: "XOR2", drives: fullDrives, nDevices: 6, complex: true})
	add(archetype{function: "XOR3", drives: fullDrives, nDevices: 10, complex: true})
	add(archetype{function: "XNOR2", drives: fullDrives, nDevices: 6, complex: true})
	add(archetype{function: "XNOR3", drives: fullDrives, nDevices: 10, complex: true})
	add(archetype{function: "MUX2", drives: fullDrives, nDevices: 6, complex: true})
	add(archetype{function: "MUX4", drives: fullDrives, nDevices: 14, complex: true})
	aoiShapes := []string{"21", "22", "31", "32", "33", "211", "221", "222", "311", "321", "331", "2111", "2211", "2221", "2222"}
	for _, s := range aoiShapes {
		n := 0
		for _, ch := range s {
			n += int(ch - '0')
		}
		add(archetype{function: "AOI" + s, drives: fullDrives, nDevices: n, complex: len(s) >= 3})
		add(archetype{function: "OAI" + s, drives: fullDrives, nDevices: n, complex: len(s) >= 3})
	}
	add(archetype{function: "HA", drives: fullDrives, nDevices: 8, complex: true})
	add(archetype{function: "FA", drives: fullDrives, nDevices: 12, complex: true})
	add(archetype{function: "AO21", drives: fullDrives, nDevices: 4})
	add(archetype{function: "AO22", drives: fullDrives, nDevices: 5})
	add(archetype{function: "OA21", drives: fullDrives, nDevices: 4})
	add(archetype{function: "OA22", drives: fullDrives, nDevices: 5})
	seq := []struct {
		name string
		n    int
		rc   int
	}{
		{"DFF", 12, 4}, {"DFFR", 14, 4}, {"DFFS", 14, 4}, {"DFFRS", 16, 6},
		{"SDFF", 16, 4}, {"SDFFR", 18, 4}, {"SDFFS", 18, 4}, {"SDFFRS", 20, 6},
		{"DLH", 8, 2}, {"DLL", 8, 2}, {"DLRH", 10, 2}, {"DLRL", 10, 2},
		{"CLKGATE", 10, 2}, {"CLKGATETST", 12, 2},
	}
	for _, s := range seq {
		add(archetype{function: s.name, drives: fullDrives, nDevices: s.n, routingCols: s.rc, sequential: true})
	}
	// Negative-edge flavors and special-function cells round out the set.
	negSeq := []struct {
		name string
		n    int
		rc   int
	}{
		{"DFFN", 13, 4}, {"DFFRN", 15, 4}, {"DFFSN", 15, 4},
		{"DFFRSN", 17, 6}, {"SDFFN", 17, 4}, {"SDFFRN", 19, 4},
	}
	for _, s := range negSeq {
		add(archetype{function: s.name, drives: fullDrives, nDevices: s.n, routingCols: s.rc, sequential: true})
	}
	add(archetype{function: "CLKMUX", drives: fullDrives, nDevices: 8, complex: true})
	add(archetype{function: "ISOAND", drives: fullDrives, nDevices: 3})
	add(archetype{function: "ISOOR", drives: fullDrives, nDevices: 3})
	add(archetype{function: "LVLU", drives: fullDrives, nDevices: 4})
	add(archetype{function: "LVLD", drives: fullDrives, nDevices: 4})
	add(archetype{function: "ADDH", drives: fullDrives, nDevices: 9, complex: true})
	add(archetype{function: "LOGIC0", drives: []int{1}, nDevices: 1})
	add(archetype{function: "LOGIC1", drives: []int{1}, nDevices: 1})
	return out
}

// commercial65FoldPlan decides deterministically whether a cell folds and
// with what geometry, calibrated to Table 2: about 20 % of the library pays
// an area penalty under one-band alignment, between 10 % and 70 % per cell.
// The fold count f and total column count T are chosen so the post-
// alignment widening f/T falls in the published band.
func commercial65FoldPlan(function string, drive, nDevices int) (folds, routingCols int) {
	// Folding stacks devices onto the leading (internal, minimum-width)
	// base columns; cells too small to have internal devices cannot fold.
	if nDevices < 3 {
		return 0, 0
	}
	h := fnv.New32a()
	fmt.Fprintf(h, "fold:%s_X%d", function, drive)
	v := h.Sum32()
	if v%5 != 0 {
		return 0, 0
	}
	// Target widening ratio ρ = folds/totalColumns in [0.10, 0.70], drawn
	// deterministically per cell.
	rho := 0.10 + float64((v>>5)%61)/100
	// The smallest fold count able to reach ρ given T ≥ (n-folds)+1:
	// folds ≥ ρ(n+1)/(1+ρ). Folded devices must land on internal base
	// columns, never the output column: folds ≤ (n-1)/2.
	folds = int(math.Ceil(rho * float64(nDevices+1) / (1 + rho)))
	if folds < 1 {
		folds = 1
	}
	// Each fold needs its own minimum-width internal column to stack over:
	// folds ≤ ⌈(base-1)/2⌉ with base = n - folds, i.e. folds ≤ n/3.
	if max := nDevices / 3; folds > max {
		folds = max
	}
	if folds < 1 {
		return 0, 0
	}
	base := nDevices - folds
	total := int(math.Round(float64(folds) / rho))
	if total < base+1 {
		total = base + 1 // ρ capped by geometry: realize the closest ratio
	}
	routingCols = total - 1 - base
	if routingCols < 0 {
		routingCols = 0
	}
	return folds, routingCols
}

// Commercial65 generates the 775-cell synthetic 65 nm commercial library of
// Table 2.
func Commercial65() (*Library, error) {
	lib := &Library{Name: "commercial-65", NodeNM: 65}
	const (
		polyPitch  = 190 * commercial65Scale
		cellHeight = 1400 * commercial65Scale
	)
	for _, a := range commercial65Functions() {
		for _, d := range a.drives {
			ac := a
			folds, rc := commercial65FoldPlan(a.function, d, a.nDevices)
			if folds > 0 {
				ac.foldsPerDrive = map[int]int{d: folds}
				ac.routingCols = rc
			}
			lib.Cells = append(lib.Cells, buildCell(ac, d, polyPitch, cellHeight, commercial65Scale))
		}
	}
	// Pad with fill cells up to exactly 775 (a production library ships a
	// range of fill/decap widths).
	fill := 1
	for len(lib.Cells) < 775 {
		lib.Cells = append(lib.Cells, buildCell(
			archetype{function: "FILL", noDevices: true}, fill, polyPitch, cellHeight, commercial65Scale))
		fill++
	}
	if len(lib.Cells) > 775 {
		lib.Cells = lib.Cells[:775]
	}
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	if len(lib.Cells) != 775 {
		return nil, fmt.Errorf("celllib: commercial library has %d cells, want 775", len(lib.Cells))
	}
	return lib, nil
}
