package celllib

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// WriteJSON serializes a library (an interchange format in the spirit of a
// LEF abstract: geometry needed by the yield/alignment tools, nothing
// else).
func (l *Library) WriteJSON(w io.Writer) error {
	if w == nil {
		return errors.New("celllib: nil writer")
	}
	if err := l.Validate(); err != nil {
		return fmt.Errorf("celllib: refusing to serialize invalid library: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l)
}

// ReadJSON deserializes and validates a library.
func ReadJSON(r io.Reader) (*Library, error) {
	if r == nil {
		return nil, errors.New("celllib: nil reader")
	}
	var lib Library
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&lib); err != nil {
		return nil, fmt.Errorf("celllib: decoding library: %w", err)
	}
	if err := lib.Validate(); err != nil {
		return nil, fmt.Errorf("celllib: loaded library invalid: %w", err)
	}
	return &lib, nil
}
