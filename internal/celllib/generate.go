package celllib

import (
	"fmt"
	"hash/fnv"
)

// Geometry constants for the synthetic libraries.
const (
	// OffsetGridNM is the lateral placement grid of active regions: cell
	// families place their device rows on multiples of this grid. 14 grid
	// slots are in use (0..260 nm), which reproduces the paper's Table 1
	// partial-correlation benefit (≈ 26.5×) for the unmodified library.
	OffsetGridNM = 20
	// OffsetSlots is the number of occupied lateral grid positions.
	OffsetSlots = 14
	// FoldOffsetNM is the extra lateral offset of folded (stacked) devices
	// relative to the cell's base offset.
	FoldOffsetNM = 160
	// MinWidthNM is the minimum n-type transistor width (internal devices
	// of complex cells) at the 45 nm node.
	MinWidthNM = 60
	// PWidthRatio scales p-type widths relative to n-type (mobility
	// compensation).
	PWidthRatio = 1.4
)

// archetype describes one cell family for the generator.
type archetype struct {
	function string
	drives   []int
	// nDevices is the pull-down transistor count (the pull-up count
	// matches).
	nDevices int
	// routingCols adds non-device columns (internal routing, especially in
	// sequentials).
	routingCols int
	sequential  bool
	// complex cells implement their non-output devices at minimum width
	// (internal nodes); simple gates carry the drive width on every device.
	complex bool
	// foldsPerDrive maps drive → number of single-column folded device
	// stacks (devices at the cell's base offset + FoldOffsetNM). Cells not
	// listed fold nothing. Folded cells are implicitly complex.
	foldsPerDrive map[int]int
	// noDevices marks fill/tie cells.
	noDevices bool
}

func (a archetype) isComplex() bool {
	return a.complex || a.sequential || len(a.foldsPerDrive) > 0
}

// driveWidth maps drive strength to the output-stage n-type width (nm) at
// the 45 nm node, matching the frozen width-distribution support.
func driveWidth(drive int) float64 {
	switch {
	case drive <= 1:
		return 180
	case drive <= 3:
		return 260
	case drive <= 4:
		return 340
	default:
		return 420
	}
}

// nangateArchetypes returns the 45 nm family table; drives across all
// families sum to exactly 134 cells.
func nangateArchetypes() []archetype {
	return []archetype{
		{function: "INV", drives: []int{1, 2, 4, 8, 16, 32}, nDevices: 1},
		{function: "BUF", drives: []int{1, 2, 4, 8, 16, 32}, nDevices: 2},
		{function: "CLKBUF", drives: []int{1, 2, 3, 4, 8, 16}, nDevices: 2},
		{function: "NAND2", drives: []int{1, 2, 4, 8}, nDevices: 2},
		{function: "NAND3", drives: []int{1, 2, 4}, nDevices: 3},
		{function: "NAND4", drives: []int{1, 2, 4}, nDevices: 4},
		{function: "NOR2", drives: []int{1, 2, 4, 8}, nDevices: 2},
		{function: "NOR3", drives: []int{1, 2, 4}, nDevices: 3},
		{function: "NOR4", drives: []int{1, 2, 4}, nDevices: 4},
		{function: "AND2", drives: []int{1, 2, 4, 8}, nDevices: 3},
		{function: "AND3", drives: []int{1, 2, 4}, nDevices: 4},
		{function: "AND4", drives: []int{1, 2, 4}, nDevices: 5},
		{function: "OR2", drives: []int{1, 2, 4, 8}, nDevices: 3},
		{function: "OR3", drives: []int{1, 2, 4}, nDevices: 4},
		{function: "OR4", drives: []int{1, 2, 4}, nDevices: 5},
		{function: "XOR2", drives: []int{1, 2, 4}, nDevices: 6, complex: true},
		{function: "XNOR2", drives: []int{1, 2, 4}, nDevices: 6, complex: true},
		{function: "AOI21", drives: []int{1, 2, 4}, nDevices: 3},
		{function: "AOI22", drives: []int{1, 2, 4, 8}, nDevices: 4},
		{function: "AOI211", drives: []int{1, 2}, nDevices: 4, complex: true},
		{function: "AOI221", drives: []int{1, 2}, nDevices: 5, complex: true},
		// AOI222_X1 folds one device column: +1 column after one-band
		// alignment on a 10-column cell → 1/11 ≈ 9% widening (Fig. 3.2).
		{function: "AOI222", drives: []int{1, 2}, nDevices: 6, routingCols: 5,
			foldsPerDrive: map[int]int{1: 1}},
		{function: "OAI21", drives: []int{1, 2, 4}, nDevices: 3},
		{function: "OAI22", drives: []int{1, 2, 4, 8}, nDevices: 4},
		{function: "OAI211", drives: []int{1, 2}, nDevices: 4, complex: true},
		{function: "OAI221", drives: []int{1, 2}, nDevices: 5, complex: true},
		// OAI222_X1: one fold on a 6-column cell → 1/7 ≈ 14% (Table 2 max).
		{function: "OAI222", drives: []int{1, 2}, nDevices: 6, routingCols: 1,
			foldsPerDrive: map[int]int{1: 1}},
		{function: "OAI33", drives: []int{1}, nDevices: 6, complex: true},
		{function: "MUX2", drives: []int{1, 2, 4}, nDevices: 6, complex: true},
		{function: "HA", drives: []int{1, 2}, nDevices: 8, complex: true},
		{function: "FA", drives: []int{1, 2}, nDevices: 12, complex: true},
		{function: "DFF", drives: []int{1, 2, 4}, nDevices: 12, routingCols: 4, sequential: true},
		{function: "DFFR", drives: []int{1, 2}, nDevices: 14, routingCols: 4, sequential: true},
		{function: "DFFS", drives: []int{1, 2}, nDevices: 14, routingCols: 4, sequential: true},
		// DFFRS_X2: 24-column sequential, one fold → 1/25 = 4% (Table 2 min).
		{function: "DFFRS", drives: []int{1, 2}, nDevices: 16, routingCols: 9, sequential: true,
			foldsPerDrive: map[int]int{2: 1}},
		{function: "SDFF", drives: []int{1, 2}, nDevices: 16, routingCols: 4, sequential: true},
		{function: "SDFFR", drives: []int{1, 2}, nDevices: 18, routingCols: 4, sequential: true},
		{function: "SDFFS", drives: []int{1, 2}, nDevices: 18, routingCols: 4, sequential: true},
		// SDFFRS_X2: one fold on a 15-column cell → 1/16 ≈ 6%.
		{function: "SDFFRS", drives: []int{1, 2}, nDevices: 14, routingCols: 1, sequential: true,
			foldsPerDrive: map[int]int{2: 1}},
		{function: "DLH", drives: []int{1, 2}, nDevices: 8, routingCols: 2, sequential: true},
		{function: "DLL", drives: []int{1, 2}, nDevices: 8, routingCols: 2, sequential: true},
		{function: "TBUF", drives: []int{1, 2, 4, 8, 16, 32}, nDevices: 4},
		{function: "TINV", drives: []int{1}, nDevices: 4},
		{function: "LOGIC0", drives: []int{1}, nDevices: 1},
		{function: "LOGIC1", drives: []int{1}, nDevices: 1},
		{function: "FILLCELL", drives: []int{1, 2, 4, 8, 16, 32}, noDevices: true},
	}
}

// baseOffset derives the deterministic lateral grid slot of a cell family.
func baseOffset(function string, drive int) float64 {
	h := fnv.New32a()
	fmt.Fprintf(h, "%s_X%d", function, drive)
	return float64(h.Sum32()%OffsetSlots) * OffsetGridNM
}

// buildCell synthesizes the geometry of one cell at the reference node
// scaled by `scale` (1 at 45 nm, 65/45 at 65 nm).
func buildCell(a archetype, drive int, polyPitch, cellHeight, scale float64) Cell {
	name := fmt.Sprintf("%s_X%d", a.function, drive)
	c := Cell{
		Name:        name,
		Function:    a.function,
		Drive:       drive,
		HeightNM:    cellHeight,
		PolyPitchNM: polyPitch,
		Sequential:  a.sequential,
	}
	if a.noDevices {
		c.WidthNM = float64(drive) * polyPitch
		return c
	}
	folds := a.foldsPerDrive[drive]
	base := baseOffset(a.function, drive) * scale
	outW := driveWidth(drive) * scale
	minW := MinWidthNM * scale
	baseDevices := a.nDevices - folds
	if baseDevices < 1 {
		baseDevices = 1
	}
	// Folded devices may only stack over minimum-width internal columns
	// (even indices below the output column); stacking over a drive-width
	// device would overlap it laterally.
	var foldCols []int
	for i := 0; i < baseDevices-1; i += 2 {
		foldCols = append(foldCols, i)
	}
	if len(foldCols) == 0 {
		foldCols = []int{0}
	}
	for i := 0; i < a.nDevices; i++ {
		w := outW
		if a.isComplex() && i != baseDevices-1 && i%2 == 0 {
			// Complex cells: roughly half of the non-output devices are
			// minimum-width internal transistors (pass gates, feedback
			// inverters); the rest carry the drive width.
			w = minW
		}
		col := i
		off := base
		if i >= baseDevices {
			// Folded devices stack over internal minimum-width columns at a
			// second lateral offset.
			col = foldCols[(i-baseDevices)%len(foldCols)]
			off = base + FoldOffsetNM*scale
			w = minW
		}
		c.Transistors = append(c.Transistors,
			Transistor{Name: fmt.Sprintf("MN%d", i), Type: NFET, WidthNM: w, Column: col, YOffsetNM: off},
			Transistor{Name: fmt.Sprintf("MP%d", i), Type: PFET, WidthNM: w * PWidthRatio, Column: col, YOffsetNM: off},
		)
	}
	usedCols := baseDevices + a.routingCols
	c.WidthNM = float64(usedCols+1) * polyPitch
	// Pins: inputs on device columns, output at the right edge.
	for i := 0; i < minInt(a.nDevices, 6); i++ {
		c.Pins = append(c.Pins, Pin{
			Name:   fmt.Sprintf("A%d", i+1),
			XNM:    c.columnX0(i % baseDevices),
			YNM:    cellHeight / 2,
			Signal: "input",
		})
	}
	c.Pins = append(c.Pins, Pin{Name: "ZN", XNM: c.WidthNM - polyPitch/2, YNM: cellHeight / 2, Signal: "output"})
	if a.sequential {
		c.Pins = append(c.Pins, Pin{Name: "CK", XNM: polyPitch / 2, YNM: cellHeight * 0.25, Signal: "clock"})
	}
	return c
}

// NangateLike45 generates the 134-cell synthetic 45 nm library.
func NangateLike45() (*Library, error) {
	lib := &Library{Name: "nangate-like-45", NodeNM: 45}
	for _, a := range nangateArchetypes() {
		for _, d := range a.drives {
			lib.Cells = append(lib.Cells, buildCell(a, d, 190, 1400, 1))
		}
	}
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	if len(lib.Cells) != 134 {
		return nil, fmt.Errorf("celllib: Nangate-like library has %d cells, want 134", len(lib.Cells))
	}
	return lib, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
