// Package top closes the fixture diamond over mid1 and mid2.
package top

import (
	"mid1"
	"mid2"
)

// Run exercises both sides of the diamond.
func Run(ch chan int) int {
	mid1.Bump()
	c := mid2.Count()
	c.Add()
	return mid1.DrainAll(ch)
}
