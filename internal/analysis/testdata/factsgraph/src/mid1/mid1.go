// Package mid1 is one side of the fixture diamond.
package mid1

import (
	"sync/atomic"

	"leaf"
)

// Ops counts mid1 operations, atomically.
var Ops int64

// Bump records one operation.
func Bump() { atomic.AddInt64(&Ops, 1) }

// DrainAll forwards to the blocking leaf helper.
func DrainAll(ch chan int) int { return leaf.Drain(ch) }
