// Package leaf is the shared dependency of the facts-graph race fixture:
// it exports an atomically-updated field, a blocking helper and a
// context-root reacher, so every fact computer in the suite has something
// non-trivial to record about it.
package leaf

import (
	"context"
	"sync/atomic"
)

// Counter counts hits; Hits is updated atomically.
type Counter struct{ Hits int64 }

// Add bumps the counter.
func (c *Counter) Add() { atomic.AddInt64(&c.Hits, 1) }

// Drain blocks until ch yields a value.
func Drain(ch chan int) int { return <-ch }

// Detached mints a fresh root context.
func Detached() context.Context { return context.Background() }
