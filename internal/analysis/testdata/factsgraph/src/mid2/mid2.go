// Package mid2 is the other side of the fixture diamond.
package mid2

import (
	"context"

	"leaf"
)

// Root reaches a context root through leaf.
func Root() context.Context { return leaf.Detached() }

// Count is a fresh counter wired to leaf's atomic field discipline.
func Count() *leaf.Counter { return new(leaf.Counter) }
