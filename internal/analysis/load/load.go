// Package load turns Go source into the type-checked analysis.Target the
// yieldvet analyzers run over, using only the standard library's parser
// and type checker.
//
// Three loading paths share these helpers:
//
//   - the analysistest harness loads fixture directories, resolving their
//     (stdlib-only) imports by type-checking GOROOT sources via the
//     "source" importer — hermetic, no build cache or network needed;
//   - yieldvet's standalone mode loads module packages listed by
//     `go list -deps -export -json`, resolving imports through the
//     compiler's export data — exact and fast;
//   - yieldvet's `go vet -vettool` mode does the same from the vet.cfg
//     the go command hands it.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/cnfet/yieldlab/internal/analysis"
)

// Files parses and type-checks one package from explicit file names.
// importPath becomes the package path; imp resolves imports; goVersion
// ("go1.24", or "" for the checker default) bounds the language version.
func Files(fset *token.FileSet, importPath string, filenames []string, imp types.Importer, goVersion string) (*analysis.Target, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return check(fset, importPath, files, imp, goVersion)
}

// Dir parses and type-checks the single package in dir, resolving imports
// from GOROOT source — the fixture-loading path, where imports are
// stdlib-only by construction.
func Dir(dir string) (*analysis.Target, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var filenames []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		filenames = append(filenames, filepath.Join(dir, e.Name()))
	}
	sort.Strings(filenames)
	if len(filenames) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	return Files(fset, filepath.Base(dir), filenames, SourceImporter(fset), "")
}

// A FixtureLoader loads testdata/src-style fixture trees with
// cross-package imports: the package with import path p lives in
// <root>/p, imports naming a sibling fixture directory resolve to that
// fixture (type-checked recursively), and everything else resolves from
// GOROOT source. It exists so analyzer fixtures can exercise the
// cross-package facts layer — a dependency package exporting a fact, a
// consumer package being checked against it — without leaving the
// hermetic, stdlib-only fixture world.
type FixtureLoader struct {
	root    string
	fset    *token.FileSet
	stdlib  types.Importer
	cache   map[string]*fixtureEntry
	loading map[string]bool
	order   []string
}

type fixtureEntry struct {
	target *analysis.Target
	err    error
}

// NewFixtureLoader returns a loader rooted at a testdata/src-style
// directory. The loader is not safe for concurrent use; drivers wanting
// parallelism load sequentially and parallelize fact computation instead.
func NewFixtureLoader(root string) *FixtureLoader {
	fset := token.NewFileSet()
	return &FixtureLoader{
		root:    root,
		fset:    fset,
		stdlib:  SourceImporter(fset),
		cache:   make(map[string]*fixtureEntry),
		loading: make(map[string]bool),
	}
}

// Fset returns the FileSet shared by every package this loader loads.
func (l *FixtureLoader) Fset() *token.FileSet { return l.fset }

// Load parses and type-checks the fixture package at <root>/<path>,
// loading fixture dependencies first. Results are memoized.
func (l *FixtureLoader) Load(path string) (*analysis.Target, error) {
	if e, ok := l.cache[path]; ok {
		return e.target, e.err
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through fixture %q", path)
	}
	l.loading[path] = true
	target, err := l.load(path)
	delete(l.loading, path)
	l.cache[path] = &fixtureEntry{target: target, err: err}
	if err == nil {
		l.order = append(l.order, path)
	}
	return target, err
}

// Loaded returns the fixture import paths loaded so far, dependencies
// before dependents — the order fact computation must follow.
func (l *FixtureLoader) Loaded() []string {
	out := make([]string, len(l.order))
	copy(out, l.order)
	return out
}

func (l *FixtureLoader) load(path string) (*analysis.Target, error) {
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var filenames []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		filenames = append(filenames, filepath.Join(dir, e.Name()))
	}
	sort.Strings(filenames)
	if len(filenames) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		fixtureDir := filepath.Join(l.root, filepath.FromSlash(importPath))
		if st, err := os.Stat(fixtureDir); err == nil && st.IsDir() {
			t, err := l.Load(importPath)
			if err != nil {
				return nil, err
			}
			return t.Pkg, nil
		}
		return l.stdlib.Import(importPath)
	})
	return Files(l.fset, path, filenames, imp, "")
}

// check runs the type checker over parsed files.
func check(fset *token.FileSet, importPath string, files []*ast.File, imp types.Importer, goVersion string) (*analysis.Target, error) {
	info := analysis.NewInfo()
	conf := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: goVersion,
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &analysis.Target{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// SourceImporter resolves imports by type-checking package sources under
// GOROOT. It is hermetic (no build cache) but only reaches the standard
// library; module-local imports need export data.
func SourceImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "source", nil)
}

// ExportImporter resolves imports through compiler export data files:
// importMap translates source-level import strings to package paths
// (identity for non-vendored builds) and packageFile locates each package
// path's export data. Both maps follow the go command's vet.cfg schema and
// the output of `go list -export`.
func ExportImporter(fset *token.FileSet, importMap, packageFile map[string]string) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		if path, ok := importMap[importPath]; ok {
			importPath = path
		}
		return gc.Import(importPath)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
