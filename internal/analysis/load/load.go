// Package load turns Go source into the type-checked analysis.Target the
// yieldvet analyzers run over, using only the standard library's parser
// and type checker.
//
// Three loading paths share these helpers:
//
//   - the analysistest harness loads fixture directories, resolving their
//     (stdlib-only) imports by type-checking GOROOT sources via the
//     "source" importer — hermetic, no build cache or network needed;
//   - yieldvet's standalone mode loads module packages listed by
//     `go list -deps -export -json`, resolving imports through the
//     compiler's export data — exact and fast;
//   - yieldvet's `go vet -vettool` mode does the same from the vet.cfg
//     the go command hands it.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/cnfet/yieldlab/internal/analysis"
)

// Files parses and type-checks one package from explicit file names.
// importPath becomes the package path; imp resolves imports; goVersion
// ("go1.24", or "" for the checker default) bounds the language version.
func Files(fset *token.FileSet, importPath string, filenames []string, imp types.Importer, goVersion string) (*analysis.Target, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return check(fset, importPath, files, imp, goVersion)
}

// Dir parses and type-checks the single package in dir, resolving imports
// from GOROOT source — the fixture-loading path, where imports are
// stdlib-only by construction.
func Dir(dir string) (*analysis.Target, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var filenames []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		filenames = append(filenames, filepath.Join(dir, e.Name()))
	}
	sort.Strings(filenames)
	if len(filenames) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	return Files(fset, filepath.Base(dir), filenames, SourceImporter(fset), "")
}

// check runs the type checker over parsed files.
func check(fset *token.FileSet, importPath string, files []*ast.File, imp types.Importer, goVersion string) (*analysis.Target, error) {
	info := analysis.NewInfo()
	conf := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: goVersion,
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &analysis.Target{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// SourceImporter resolves imports by type-checking package sources under
// GOROOT. It is hermetic (no build cache) but only reaches the standard
// library; module-local imports need export data.
func SourceImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "source", nil)
}

// ExportImporter resolves imports through compiler export data files:
// importMap translates source-level import strings to package paths
// (identity for non-vendored builds) and packageFile locates each package
// path's export data. Both maps follow the go command's vet.cfg schema and
// the output of `go list -export`.
func ExportImporter(fset *token.FileSet, importMap, packageFile map[string]string) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		if path, ok := importMap[importPath]; ok {
			importPath = path
		}
		return gc.Import(importPath)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
