// Package hot is a noalloc fixture: annotated functions must be free of
// allocation constructs; unannotated ones are out of scope.
package hot

import "fmt"

type scratch struct {
	buf  []float64
	name string
}

// fill is a steady-state hot path: reuse only, nothing to flag.
//
//yield:noalloc
func fill(st *scratch, xs []float64) float64 {
	buf := st.buf[:0]
	total := 0.0
	for i, x := range xs {
		if i < cap(buf) {
			buf = buf[:i+1]
			buf[i] = x
		}
		total += x
	}
	st.buf = buf
	return total
}

// leaky trips every allocation construct the analyzer knows.
//
//yield:noalloc
func leaky(st *scratch, xs []float64) error {
	st.buf = make([]float64, 4)       // want "make allocates in //yield:noalloc function"
	p := new(scratch)                 // want "new allocates in //yield:noalloc function"
	st.buf = append(st.buf, 1)        // want "append may grow its backing array"
	f := func() {}                    // want "closure in //yield:noalloc function"
	s := []float64{1, 2}              // want "slice literal allocates"
	m := map[string]int{}             // want "map literal allocates"
	q := &scratch{}                   // want "&composite literal allocates"
	st.name = st.name + "x"           // want "string concatenation allocates"
	st.name += "y"                    // want "string concatenation allocates"
	go fill(st, xs)                   // want "go statement in //yield:noalloc function"
	var sink any = st                 // plain declaration: assignment boxing is out of AST scope
	_ = fmt.Errorf("oops %d", len(s)) // want "passing a concrete value as any boxes it"
	_, _, _, _, _ = p, f, m, q, sink
	return nil
}

// boxed exercises the interface-conversion checks in isolation.
//
//yield:noalloc
func boxed(st *scratch, err error, vals []any) {
	takeAny(st)           // want "passing a concrete value as any boxes it"
	takeAny(err)          // already an interface: no new boxing
	takeAny(nil)          // nil boxes to the zero interface without allocating
	takeVariadic(1, 2)    // want "passing a concrete value as any boxes it" "passing a concrete value as any boxes it"
	takeVariadic(vals...) // spreading an existing slice does not box per element
	_ = any(err)          // interface-to-interface conversion is free
	_ = any(st.buf)       // want "conversion to interface boxes its operand"
}

func takeAny(v any)          { _ = v }
func takeVariadic(vs ...any) { _ = vs }

// unannotated may allocate freely: the invariant is opt-in.
func unannotated() []float64 {
	out := make([]float64, 8)
	return append(out, 1)
}

// allowed documents a deliberate warm-up growth path.
//
//yield:noalloc
func allowed(st *scratch, x float64) {
	//yield:allow(noalloc) scratch grows once until it covers the population, then steady-state reuse
	st.buf = append(st.buf, x)
}
