package noalloc_test

import (
	"testing"

	"github.com/cnfet/yieldlab/internal/analysis/analysistest"
	"github.com/cnfet/yieldlab/internal/analysis/noalloc"
)

func TestAnnotatedFunctions(t *testing.T) {
	analysistest.Run(t, "hot", noalloc.Analyzer)
}
