// Package noalloc checks functions annotated //yield:noalloc — the Monte
// Carlo hot paths PR 5 made allocation-free (RowModel.Round, the
// ring-buffer DP, the tabulated samplers) — for allocation constructs in
// their bodies:
//
//   - make / new and slice, map and &composite literals;
//   - append (the backing array may grow — pre-size the scratch, and
//     document deliberate warm-up growth paths with //yield:allow);
//   - function literals (the closure object and its captures live on the
//     heap whenever the compiler cannot prove otherwise);
//   - string concatenation;
//   - implicit interface conversions at call boundaries (boxing), the
//     classic hidden allocation behind fmt and error paths;
//   - go statements (a new goroutine is never free).
//
// The AST view is an approximation in both directions: it cannot see
// escape analysis (a make the compiler stack-allocates is flagged; an
// escaping value it has no syntax for is missed). `yieldvet escape`
// closes the gap by parsing the compiler's -m output for the same
// annotated set, so the AST check documents intent at the source level
// while the compiler confirms the steady state.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/cnfet/yieldlab/internal/analysis"
)

// Analyzer is the zero-allocation invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "flag allocation constructs inside functions annotated //yield:noalloc",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.NonTestFiles() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !analysis.IsNoalloc(fn) {
				continue
			}
			checkBody(pass, fn)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in //yield:noalloc function may allocate its captures")
			return false // the literal's body belongs to the closure, not this function
		case *ast.CompositeLit:
			checkCompositeLit(pass, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal allocates in //yield:noalloc function")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass, n.X) {
				pass.Reportf(n.Pos(), "string concatenation allocates in //yield:noalloc function")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && isString(pass, n.Lhs[0]) {
				pass.Reportf(n.Pos(), "string concatenation allocates in //yield:noalloc function")
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in //yield:noalloc function spawns a goroutine (allocates)")
		}
		return true
	})
}

// checkCall flags allocating builtins and implicit interface conversions
// at call boundaries.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s allocates in //yield:noalloc function; reuse caller-owned scratch", id.Name)
			case "append":
				pass.Reportf(call.Pos(), "append may grow its backing array in //yield:noalloc function; pre-size the scratch")
			}
			return
		}
	}

	tv, ok := pass.TypesInfo.Types[call.Fun]
	if ok && tv.IsType() {
		// Explicit conversion T(x): boxing when T is an interface.
		if isIface(tv.Type) && len(call.Args) == 1 && !isIfaceOrNil(pass, call.Args[0]) {
			pass.Reportf(call.Pos(), "conversion to interface boxes its operand in //yield:noalloc function")
		}
		return
	}

	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // xs... passes the slice through, no per-element boxing
			}
			param = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			param = params.At(i).Type()
		default:
			continue
		}
		if isIface(param) && !isIfaceOrNil(pass, arg) {
			pass.Reportf(arg.Pos(), "passing a concrete value as %s boxes it in //yield:noalloc function", param.String())
		}
	}
}

// checkCompositeLit flags literals whose backing store is heap-prone:
// slices and maps. Plain struct and array values live in place.
func checkCompositeLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal allocates in //yield:noalloc function")
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal allocates in //yield:noalloc function")
	}
}

func isString(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func isIface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// isIfaceOrNil reports whether arg is already interface-typed (no new
// boxing) or the untyped nil (boxes to the zero interface, no allocation).
func isIfaceOrNil(pass *analysis.Pass, arg ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil {
		return true // be conservative: no type info, no finding
	}
	if tv.IsNil() {
		return true
	}
	return isIface(tv.Type)
}
