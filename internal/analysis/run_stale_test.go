package analysis_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"github.com/cnfet/yieldlab/internal/analysis"
	"github.com/cnfet/yieldlab/internal/analysis/apilock"
	"github.com/cnfet/yieldlab/internal/analysis/atomicsafe"
	"github.com/cnfet/yieldlab/internal/analysis/ctxflow"
	"github.com/cnfet/yieldlab/internal/analysis/spanbalance"
)

// TestStaleAllowsForSuiteRules proves the staleness gate extends to the v2
// analyzers: a //yield:allow for ctxflow, spanbalance, atomicsafe or apilock
// on a line none of them flags is itself an error, so waivers cannot outlive
// the finding that justified them.
func TestStaleAllowsForSuiteRules(t *testing.T) {
	suite := []*analysis.Analyzer{
		ctxflow.Analyzer,
		spanbalance.Analyzer,
		atomicsafe.Analyzer,
		apilock.Analyzer,
	}
	for _, rule := range []string{"ctxflow", "spanbalance", "atomicsafe", "apilock"} {
		t.Run(rule, func(t *testing.T) {
			src := fmt.Sprintf(`package fixture
func f() {
	_ = 1 //yield:allow(%s) nothing on this line triggers the rule
}
`, rule)
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			info := analysis.NewInfo()
			pkg, err := (&types.Config{}).Check("fixture", fset, []*ast.File{f}, info)
			if err != nil {
				t.Fatal(err)
			}
			target := &analysis.Target{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
			diags, err := analysis.Check(target, suite)
			if err != nil {
				t.Fatal(err)
			}
			want := "stale //yield:allow(" + rule + ")"
			if len(diags) != 1 || !strings.Contains(diags[0].Message, want) {
				t.Fatalf("want exactly one diagnostic containing %q, got %v", want, diags)
			}
		})
	}
}
