// Package analysis is a deliberately small, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough framework to write the
// repo-specific yieldvet analyzers (determinism, noalloc, canonical,
// errenvelope) against the standard library's go/ast and go/types.
//
// The module is stdlib-only by policy — the sandboxed builders this repo
// grows under have no module proxy — so instead of importing x/tools the
// package mirrors the parts of its API the analyzers need: an Analyzer
// carries a name, documentation and a Run function; a Pass hands Run one
// type-checked package and collects Diagnostics. The shapes match x/tools
// closely enough that porting the analyzers onto the real framework is a
// mechanical change should the dependency ever become available.
//
// On top of the x/tools shape the package adds the repo's suppression
// story: //yield:allow(rule) directives (see directive.go) are applied by
// Check in run.go, which also verifies the directives themselves — unknown
// rules, missing reasons and stale suppressions are diagnostics, so the
// annotation layer cannot rot silently.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one analysis: a named invariant checker over a
// single type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and is the rule name
	// //yield:allow(name) suppresses. It must be a valid identifier.
	Name string

	// Doc is the one-paragraph documentation shown by `yieldvet help`.
	Doc string

	// Run applies the analyzer to one package. Findings go through
	// pass.Report; the error return is for the analyzer itself failing,
	// not for findings.
	Run func(*Pass) error

	// FactComputer, if set, derives this analyzer's per-package fact: a
	// JSON-serializable summary of the package that runs over importing
	// packages consult via Pass.PackageFact. It runs as a pre-pass (no
	// reporting) over every package in the dependency graph, including
	// ones never checked. The encoding must be deterministic — see the
	// contract in facts.go. A nil return records no fact.
	FactComputer func(*Pass) (any, error)
}

// String returns the analyzer's name; diagnostics and drivers print it.
func (a *Analyzer) String() string { return a.Name }

// A Pass connects one Analyzer run to the package under analysis.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records one finding. Check installs a collector here.
	Report func(Diagnostic)

	// facts is the session's fact set, nil when the driver runs without
	// cross-package facts (plain Check).
	facts *FactSet
}

// PackageFact decodes this analyzer's fact for the package with the given
// import path into out, reporting whether one was recorded. Facts exist
// only for packages the driver ran the fact pre-pass over — in-module
// dependencies — so a false return means "nothing known", not "empty".
func (p *Pass) PackageFact(pkgPath string, out any) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.get(pkgPath, p.Analyzer.Name, out)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// NonTestFiles returns the pass's files excluding _test.go files. The
// yieldvet invariants target production code: tests legitimately use wall
// clocks, environment variables and allocation-heavy helpers, and `go vet`
// hands vettools the test-augmented package variants too.
func (p *Pass) NonTestFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		name := p.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// A Diagnostic is one finding, positioned in the pass's FileSet.
type Diagnostic struct {
	Pos token.Pos
	// Rule is the analyzer (or directive-checker) name; Check fills it in.
	Rule    string
	Message string
}

// A Target is one loaded, type-checked package ready for analysis — the
// input Check shares between the analysistest harness, the standalone
// driver and the `go vet -vettool` config mode.
type Target struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
