// Package errenvelope checks that the yieldserver HTTP layer speaks one
// error schema. Every error leaving internal/server must go through the
// JSON envelope helpers (writeError / writeEvalError →
// {"error": {"code", "message"}}): clients, the CLI's server mode and the
// CI smoke test all parse that envelope, and a single http.Error slipping
// in would hand them a text/plain body with no machine-readable code.
//
// In packages named server the analyzer flags, outside _test.go files:
//
//   - http.Error and http.NotFound (plain-text error writers);
//   - fmt.Fprint/Fprintf/Fprintln and io.WriteString targeting an
//     http.ResponseWriter — raw bodies bypass the envelope and the
//     Content-Type contract. Deliberately non-JSON endpoints (the
//     Prometheus /metrics text exposition) carry a //yield:allow with
//     their justification.
package errenvelope

import (
	"go/ast"
	"go/types"

	"github.com/cnfet/yieldlab/internal/analysis"
)

// Analyzer is the error-envelope checker.
var Analyzer = &analysis.Analyzer{
	Name: "errenvelope",
	Doc:  "server handlers must emit errors through the JSON envelope helpers, never http.Error or raw writes",
	Run:  run,
}

// plainTextWriters are net/http helpers that answer with text/plain
// bodies, bypassing the envelope.
var plainTextWriters = map[string]bool{"Error": true, "NotFound": true}

// rawWriters write caller-formatted bytes to their first argument.
var rawWriters = map[string]map[string]bool{
	"fmt": {"Fprint": true, "Fprintf": true, "Fprintln": true},
	"io":  {"WriteString": true},
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() != "server" {
		return nil
	}
	rw := responseWriterType(pass.Pkg)
	for _, file := range pass.NonTestFiles() {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			switch path := fn.Pkg().Path(); {
			case path == "net/http" && plainTextWriters[fn.Name()]:
				pass.Reportf(call.Pos(),
					"http.%s writes a text/plain error outside the JSON envelope; use writeError instead",
					fn.Name())
			case rawWriters[path][fn.Name()]:
				if rw == nil || len(call.Args) == 0 {
					return true
				}
				tv, ok := pass.TypesInfo.Types[call.Args[0]]
				if !ok || tv.Type == nil {
					return true
				}
				if types.Implements(tv.Type, rw) || types.Identical(tv.Type, rw.Underlying()) {
					pass.Reportf(call.Pos(),
						"%s.%s writes a raw body to an http.ResponseWriter, bypassing the JSON envelope; use writeJSON/writeError",
						fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// responseWriterType resolves net/http.ResponseWriter through the
// package's imports (nil when the package never imports net/http — then
// there is nothing to protect).
func responseWriterType(pkg *types.Package) *types.Interface {
	for _, imp := range pkg.Imports() {
		if imp.Path() != "net/http" {
			continue
		}
		obj := imp.Scope().Lookup("ResponseWriter")
		if obj == nil {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	return nil
}
