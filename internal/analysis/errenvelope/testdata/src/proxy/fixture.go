// Package proxy is a clean fixture: the envelope contract binds only
// packages named server.
package proxy

import (
	"fmt"
	"net/http"
)

func debug(w http.ResponseWriter, err error) {
	http.Error(w, err.Error(), http.StatusTeapot)
	fmt.Fprintf(w, "err=%v", err)
}
