// Package server is an errenvelope fixture: error bodies must go through
// the JSON envelope helpers.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

type envelope struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeError is the sanctioned envelope helper.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(envelope{Code: "bad_request", Message: err.Error()})
}

// bad emits errors every way the analyzer must catch.
func bad(w http.ResponseWriter, r *http.Request, err error) {
	http.Error(w, err.Error(), http.StatusBadRequest) // want "http.Error writes a text/plain error outside the JSON envelope"
	http.NotFound(w, r)                               // want "http.NotFound writes a text/plain error"
	fmt.Fprintf(w, "error: %v", err)                  // want "fmt.Fprintf writes a raw body to an http.ResponseWriter"
	fmt.Fprintln(w, "nope")                           // want "fmt.Fprintln writes a raw body"
	_, _ = io.WriteString(w, "nope")                  // want "io.WriteString writes a raw body"
}

// good stays inside the envelope; raw writes to non-ResponseWriter sinks
// are out of scope.
func good(w http.ResponseWriter, err error) {
	writeError(w, http.StatusBadRequest, err)
	var b strings.Builder
	fmt.Fprintf(&b, "log line: %v", err)
}

// metricsText is a deliberately non-JSON endpoint.
func metricsText(w http.ResponseWriter, body string) {
	//yield:allow(errenvelope) Prometheus text exposition format, not an API error body
	_, _ = io.WriteString(w, body)
}
