package errenvelope_test

import (
	"testing"

	"github.com/cnfet/yieldlab/internal/analysis/analysistest"
	"github.com/cnfet/yieldlab/internal/analysis/errenvelope"
)

func TestServerPackage(t *testing.T) {
	analysistest.Run(t, "server", errenvelope.Analyzer)
}

func TestNonServerPackageIsExempt(t *testing.T) {
	analysistest.Run(t, "proxy", errenvelope.Analyzer)
}
