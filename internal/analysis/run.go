package analysis

import (
	"fmt"
	"sort"
)

// DirectiveRule is the rule name under which Check reports problems with
// the directives themselves (malformed syntax, unknown rules, missing
// reasons, stale suppressions). It is not suppressible.
const DirectiveRule = "directive"

// Check runs the analyzers over one package and applies the //yield:allow
// suppression layer. The returned diagnostics are the surviving findings
// plus any directive problems, sorted by position. The error return is for
// an analyzer itself failing, not for findings.
//
// Directive validation happens here because it needs both the analyzer set
// (to reject unknown rule names) and the findings (to reject stale
// suppressions): an //yield:allow(rule) whose rule is not in this run's
// analyzer set is an error, and so is one that suppresses nothing. The
// noalloc rule name is always considered known — it doubles as the
// function-annotation directive and `yieldvet escape` consumes it outside
// any analyzer run.
func Check(target *Target, analyzers []*Analyzer) ([]Diagnostic, error) {
	return CheckFacts(target, analyzers, nil)
}

// CheckFacts is Check with a cross-package fact set: analyzers consult the
// facts of the target's dependencies via Pass.PackageFact. The caller is
// responsible for having filled fs in dependency order (ComputeFacts or
// ComputeFactsGraph); the target's own facts are computed here so an
// analyzer sees its own package the same way importers will.
func CheckFacts(target *Target, analyzers []*Analyzer, fs *FactSet) ([]Diagnostic, error) {
	dirs := ParseDirectives(target.Fset, target.Files)

	known := map[string]bool{DirNoalloc: true}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	if fs != nil {
		if err := ComputeFacts(target, analyzers, fs); err != nil {
			return nil, err
		}
	}

	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      target.Fset,
			Files:     target.Files,
			Pkg:       target.Pkg,
			TypesInfo: target.Info,
			facts:     fs,
		}
		pass.Report = func(d Diagnostic) {
			d.Rule = a.Name
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}

	// Apply suppressions: a finding is dropped when an allow for its rule
	// covers its line.
	kept := diags[:0]
	for _, d := range diags {
		pos := target.Fset.Position(d.Pos)
		suppressed := false
		for _, a := range dirs.allowsFor(pos.Filename, pos.Line) {
			if a.Rule == d.Rule {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}

	// Directive problems: malformed syntax from the parser, plus unknown
	// rules and staleness, which need this run's context.
	for _, p := range dirs.Problems {
		p.Rule = DirectiveRule
		kept = append(kept, p)
	}
	seen := make(map[*Allow]bool)
	for _, byLine := range dirs.Allows {
		for _, allows := range byLine {
			for _, a := range allows {
				if seen[a] {
					continue
				}
				seen[a] = true
				switch {
				case !known[a.Rule]:
					kept = append(kept, Diagnostic{
						Pos:  a.Pos,
						Rule: DirectiveRule,
						Message: fmt.Sprintf("//yield:allow(%s): unknown rule %q (have %s)",
							a.Rule, a.Rule, knownRules(known)),
					})
				case !a.used && a.Rule != DirNoalloc:
					// noalloc allows may exist solely for `yieldvet escape`
					// findings, which this AST run cannot see; escape mode
					// does its own staleness pass over the combined set.
					kept = append(kept, Diagnostic{
						Pos:  a.Pos,
						Rule: DirectiveRule,
						Message: fmt.Sprintf("stale //yield:allow(%s): no %s finding on this line — delete the suppression",
							a.Rule, a.Rule),
					})
				}
			}
		}
	}

	sort.Slice(kept, func(i, j int) bool {
		pi, pj := target.Fset.Position(kept[i].Pos), target.Fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return kept[i].Message < kept[j].Message
	})
	return kept, nil
}

// knownRules renders the known rule set for error messages, sorted.
func knownRules(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
