// Package ctxflow implements the yieldvet analyzer enforcing context
// discipline on the paths that reach sweep/Monte Carlo work.
//
// The invariant: once a function is on a call path into the compute
// engines (rowyield, montecarlo, rareevent, renewal — the packages whose
// work is long-running and span-instrumented), it must thread its caller's
// context.Context rather than re-rooting one. Calling context.Background,
// context.TODO or context.WithoutCancel inside such a function silently
// severs cancellation and tracing for everything below it; when the
// detachment is deliberate (an async job engine that outlives its
// submitting request), the call site says so with a reasoned
// //yield:allow(ctxflow) waiver. A context parameter that is accepted but
// never used is flagged for the same reason: it advertises threading that
// does not happen.
//
// Reachability is computed cross-package through the facts layer: each
// package exports a ReachFact naming its functions that reach engine work,
// and importing packages extend the closure from those names. Goroutine
// launches (`go f()`) do not propagate reachability — a goroutine is a new
// lifecycle, and the detachment rules apply inside the launched function
// itself. Package main is exempt: binaries legitimately root their
// contexts.
package ctxflow

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"github.com/cnfet/yieldlab/internal/analysis"
)

// Analyzer is the ctxflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name:         "ctxflow",
	Doc:          "functions reaching sweep/MC work must thread context.Context, not re-root it",
	Run:          run,
	FactComputer: computeFact,
}

// ReachFact is the per-package fact: the fully-qualified names
// ((*types.Func).FullName) of functions in the package that reach engine
// work, sorted.
type ReachFact struct {
	Reach []string `json:"reach"`
}

// enginePackages are the import-path base names of the compute engines.
var enginePackages = map[string]bool{
	"rowyield":   true,
	"montecarlo": true,
	"rareevent":  true,
	"renewal":    true,
}

func isEnginePath(path string) bool {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return enginePackages[path]
}

func computeFact(pass *analysis.Pass) (any, error) {
	reach := reachingFuncs(pass)
	names := make([]string, 0, len(reach))
	for fn := range reach {
		names = append(names, fn.FullName())
	}
	sort.Strings(names)
	return ReachFact{Reach: names}, nil
}

// reachingFuncs returns the functions declared in this package that reach
// engine work: every function of an engine package itself, plus the
// fixpoint of "calls a reaching function" over the package's call graph,
// seeded by calls into engine packages and by imported ReachFacts.
func reachingFuncs(pass *analysis.Pass) map[*types.Func]bool {
	reach := make(map[*types.Func]bool)
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.NonTestFiles() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[obj] = fn
			if isEnginePath(pass.Pkg.Path()) {
				reach[obj] = true
			}
		}
	}

	// calls[f] lists f's direct callees, excluding goroutine launches.
	calls := make(map[*types.Func][]*types.Func)
	for obj, fn := range decls {
		calls[obj] = callees(pass, fn)
	}

	imported := make(map[string]map[string]bool) // pkg path -> reaching names
	external := func(callee *types.Func) bool {
		pkg := callee.Pkg()
		if pkg == nil || pkg == pass.Pkg {
			return false
		}
		if isEnginePath(pkg.Path()) {
			return true
		}
		set, ok := imported[pkg.Path()]
		if !ok {
			set = make(map[string]bool)
			var fact ReachFact
			if pass.PackageFact(pkg.Path(), &fact) {
				for _, name := range fact.Reach {
					set[name] = true
				}
			}
			imported[pkg.Path()] = set
		}
		return set[callee.FullName()]
	}

	for changed := true; changed; {
		changed = false
		for obj := range decls {
			if reach[obj] {
				continue
			}
			for _, callee := range calls[obj] {
				if reach[callee] || external(callee) {
					reach[obj] = true
					changed = true
					break
				}
			}
		}
	}
	return reach
}

// callees resolves fn's direct callees. Calls that are the operand of a
// `go` statement are excluded: goroutine launch is a lifecycle boundary.
func callees(pass *analysis.Pass, fn *ast.FuncDecl) []*types.Func {
	launched := make(map[*ast.CallExpr]bool)
	var out []*types.Func
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			launched[n.Call] = true
		case *ast.CallExpr:
			if launched[n] {
				return true // arguments still evaluate in the caller
			}
			if callee := calleeFunc(pass, n); callee != nil {
				out = append(out, callee)
			}
		}
		return true
	})
	return out
}

// calleeFunc resolves a call expression's callee to a *types.Func, nil for
// builtins, conversions and dynamic calls through function values.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// rootFuncs are the context constructors banned in reaching library code.
var rootFuncs = map[string]bool{
	"Background":    true,
	"TODO":          true,
	"WithoutCancel": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	reach := reachingFuncs(pass)
	for _, file := range pass.NonTestFiles() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok || !reach[obj] {
				continue
			}
			checkReaching(pass, fn, obj)
		}
	}
	return nil
}

// checkReaching applies the ctxflow rules to one reaching function: no
// context re-rooting in the body, and any context parameter must be used.
func checkReaching(pass *analysis.Pass, fn *ast.FuncDecl, obj *types.Func) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if callee.Pkg().Path() == "context" && rootFuncs[callee.Name()] {
			pass.Reportf(call.Pos(),
				"%s reaches sweep/MC work but calls context.%s — thread the caller's ctx, or record deliberate detachment with //yield:allow(ctxflow)",
				obj.Name(), callee.Name())
		}
		return true
	})

	sig := obj.Type().(*types.Signature)
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		if p.Name() == "" || p.Name() == "_" || !isContextType(p.Type()) {
			continue
		}
		if !usesObject(pass, fn.Body, p) {
			pass.Reportf(p.Pos(),
				"%s accepts a context.Context (%s) that is never used — thread it into the sweep/MC work below",
				obj.Name(), p.Name())
		}
	}
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func usesObject(pass *analysis.Pass, body *ast.BlockStmt, target types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == target {
			used = true
		}
		return !used
	})
	return used
}
