package ctxflow_test

import (
	"testing"

	"github.com/cnfet/yieldlab/internal/analysis/analysistest"
	"github.com/cnfet/yieldlab/internal/analysis/ctxflow"
)

func TestFlagged(t *testing.T) {
	analysistest.Run(t, "ctxpipe", ctxflow.Analyzer)
}

func TestClean(t *testing.T) {
	analysistest.Run(t, "ctxclean", ctxflow.Analyzer)
}
