// Package ctxpipe is the flagged ctxflow fixture: functions reaching MC
// work — directly, transitively, and through the mcutil fact — that
// re-root or drop their contexts.
package ctxpipe

import (
	"context"

	"mcutil"
	"montecarlo"
)

// direct calls the engine with a fresh root instead of threading one.
func direct() (float64, error) {
	ctx := context.Background() // want "direct reaches sweep/MC work but calls context\.Background"
	return mcutil.Estimate(ctx, 100)
}

// todoRoot parks on a TODO context, which is just as detached.
func todoRoot() (float64, error) {
	ctx := context.TODO() // want "todoRoot reaches sweep/MC work but calls context\.TODO"
	return mcutil.Estimate(ctx, 100)
}

// viaFact reaches MC work only through mcutil's exported ReachFact: no
// engine package is imported here.
func viaFact(n int) (float64, error) {
	return mcutil.Estimate(context.Background(), n) // want "viaFact reaches sweep/MC work but calls context\.Background"
}

// unthreaded accepts a context and then ignores it.
func unthreaded(ctx context.Context, rounds int) float64 { // want "unthreaded accepts a context\.Context \(ctx\) that is never used"
	return montecarlo.Run(rounds)
}

// indirect reaches MC work through a local helper, so the fixpoint (not
// the seed) marks it.
func indirect() (float64, error) {
	ctx := context.Background() // want "indirect reaches sweep/MC work but calls context\.Background"
	return helper(ctx)
}

func helper(ctx context.Context) (float64, error) {
	return mcutil.Estimate(ctx, 10)
}

// waived records its detachment, so only the directive layer sees it.
func waived() (float64, error) {
	ctx := context.Background() //yield:allow(ctxflow) fixture: deliberate detachment with a recorded reason
	return mcutil.Estimate(ctx, 100)
}

// unrelated never reaches MC work; rooting a context here is fine.
func unrelated() context.Context {
	return context.Background()
}
