// Package ctxclean is the clean ctxflow fixture: every path into MC work
// threads its caller's context, and goroutine launches (a lifecycle
// boundary) do not drag reachability into their launchers.
package ctxclean

import (
	"context"

	"mcutil"
	"montecarlo"
)

// Estimate threads the caller's context all the way down.
func Estimate(ctx context.Context, rounds int) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return mcutil.Estimate(ctx, rounds)
}

// fireAndForget launches MC work in a goroutine: the launcher is not a
// reaching function, so rooting a context for unrelated bookkeeping is
// allowed here.
func fireAndForget() context.Context {
	go montecarlo.Run(1)
	return context.Background()
}
