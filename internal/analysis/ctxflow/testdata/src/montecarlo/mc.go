// Package montecarlo is an engine-package stand-in for the ctxflow
// fixtures: its import-path base name marks it as sweep/MC work.
package montecarlo

// Run pretends to burn CPU on rounds.
func Run(rounds int) float64 {
	total := 0.0
	for i := 0; i < rounds; i++ {
		total += float64(i)
	}
	return total
}
