// Package mcutil wraps the engine package one level deep: it is not an
// engine package itself, so importers can only learn that Estimate reaches
// MC work from mcutil's exported ReachFact. The fixture exists to prove
// facts flow across package boundaries.
package mcutil

import (
	"context"

	"montecarlo"
)

// Estimate reaches MC work through the engine package.
func Estimate(ctx context.Context, rounds int) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return montecarlo.Run(rounds), nil
}
