package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkSource type-checks src as one package and runs Check with the given
// analyzers. Fixtures here are import-free, so a nil importer suffices and
// the tests stay fast.
func checkSource(t *testing.T, src string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	info := NewInfo()
	conf := &types.Config{}
	pkg, err := conf.Check("fixture", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	target := &Target{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
	diags, err := Check(target, analyzers)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return diags
}

// flagCalls flags every call to a function literally named "flagme" — a
// minimal analyzer for exercising the suppression layer.
var flagCalls = &Analyzer{
	Name: "flagcalls",
	Doc:  "test analyzer: flag calls to flagme",
	Run: func(pass *Pass) error {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "flagme" {
					pass.Reportf(call.Pos(), "call to flagme")
				}
				return true
			})
		}
		return nil
	},
}

func messages(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Rule+": "+d.Message)
	}
	return out
}

func wantOne(t *testing.T, diags []Diagnostic, substr string) {
	t.Helper()
	if len(diags) != 1 || !strings.Contains(diags[0].Message, substr) {
		t.Fatalf("want exactly one diagnostic containing %q, got %v", substr, messages(diags))
	}
}

func TestAllowSuppressesFinding(t *testing.T) {
	diags := checkSource(t, `package fixture
func flagme() {}
func f() {
	flagme() //yield:allow(flagcalls) exercised deliberately in this test
}
`, flagCalls)
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics, got %v", messages(diags))
	}
}

func TestStandaloneAllowCoversNextLineOnly(t *testing.T) {
	diags := checkSource(t, `package fixture
func flagme() {}
func f() {
	//yield:allow(flagcalls) the first call is fine here
	flagme()
	flagme()
}
`, flagCalls)
	wantOne(t, diags, "call to flagme")
}

func TestTrailingAllowDoesNotLeakToNextLine(t *testing.T) {
	// The suppression on line N must not swallow line N+1's finding — the
	// exact adjacency that appears on consecutive struct fields.
	diags := checkSource(t, `package fixture
func flagme() {}
func f() {
	flagme() //yield:allow(flagcalls) this call is fine
	flagme()
}
`, flagCalls)
	wantOne(t, diags, "call to flagme")
}

func TestUnknownRuleIsAnError(t *testing.T) {
	diags := checkSource(t, `package fixture
func flagme() {}
func f() {
	flagme() //yield:allow(flagcalls) suppressed for the test
	//yield:allow(nosuchrule) reason text
	_ = 1
}
`, flagCalls)
	wantOne(t, diags, `unknown rule "nosuchrule"`)
}

func TestMissingReasonIsAnError(t *testing.T) {
	diags := checkSource(t, `package fixture
func flagme() {}
func f() {
	flagme() //yield:allow(flagcalls)
}
`, flagCalls)
	// The reasonless allow is rejected at parse time, so it also fails to
	// suppress: the finding survives alongside the directive error.
	if len(diags) != 2 {
		t.Fatalf("want finding + directive error, got %v", messages(diags))
	}
	var sawReason, sawFinding bool
	for _, d := range diags {
		sawReason = sawReason || strings.Contains(d.Message, "needs a non-empty reason")
		sawFinding = sawFinding || strings.Contains(d.Message, "call to flagme")
	}
	if !sawReason || !sawFinding {
		t.Fatalf("want both the missing-reason error and the unsuppressed finding, got %v", messages(diags))
	}
}

func TestMissingRuleNameIsAnError(t *testing.T) {
	diags := checkSource(t, `package fixture
//yield:allow() because
func f() {}
`)
	wantOne(t, diags, "needs a rule name")
}

func TestMalformedAllowIsAnError(t *testing.T) {
	diags := checkSource(t, `package fixture
//yield:allow flagcalls without parentheses
func f() {}
`)
	wantOne(t, diags, "malformed //yield:allow directive")
}

func TestStaleAllowIsAnError(t *testing.T) {
	diags := checkSource(t, `package fixture
func f() {
	_ = 1 //yield:allow(flagcalls) nothing here is actually flagged
}
`, flagCalls)
	wantOne(t, diags, "stale //yield:allow(flagcalls)")
}

func TestNoallocAllowIsExemptFromASTStaleness(t *testing.T) {
	// noalloc allows may exist solely for `yieldvet escape` findings; only
	// escape mode can rule them stale.
	diags := checkSource(t, `package fixture
func f() {
	_ = 1 //yield:allow(noalloc) compiler-level finding, invisible to the AST pass
}
`, flagCalls)
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics, got %v", messages(diags))
	}
}

func TestUnknownDirectiveIsAnError(t *testing.T) {
	diags := checkSource(t, `package fixture
//yield:nozalloc
func f() {}
`)
	wantOne(t, diags, "unknown yield: directive")
}

func TestMisplacedNoallocIsAnError(t *testing.T) {
	diags := checkSource(t, `package fixture
func f() {
	//yield:noalloc
	_ = 1
}
`)
	wantOne(t, diags, "must be part of a function's doc comment")
}

func TestBlockCommentDirectiveIsAnError(t *testing.T) {
	diags := checkSource(t, `package fixture
/* yield:allow(flagcalls) hidden in a block comment */
func f() {}
`)
	wantOne(t, diags, "must use //-comments")
}

func TestDirectivesInTestFilesAreIgnored(t *testing.T) {
	fset := token.NewFileSet()
	src := `package fixture
func g() {
	_ = 1 //yield:allow(flagcalls) stale, but test files are exempt
}
`
	f, err := parser.ParseFile(fset, "fixture_test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	pkg, err := (&types.Config{}).Check("fixture", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Check(&Target{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}, []*Analyzer{flagCalls})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics from a test file, got %v", messages(diags))
	}
}
