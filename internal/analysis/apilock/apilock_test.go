package apilock_test

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/cnfet/yieldlab/internal/analysis/analysistest"
	"github.com/cnfet/yieldlab/internal/analysis/apilock"
	"github.com/cnfet/yieldlab/internal/analysis/load"
)

// fixtureSurface loads a fixture package and renders its live surface,
// so the tests can register exact or deliberately drifted goldens.
func fixtureSurface(t *testing.T, pkg string) string {
	t.Helper()
	loader := load.NewFixtureLoader(filepath.Join("testdata", "src"))
	target, err := loader.Load(pkg)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkg, err)
	}
	return apilock.Surface(target.Pkg)
}

func TestClean(t *testing.T) {
	apilock.RegisterGolden("apigood", fixtureSurface(t, "apigood"))
	analysistest.Run(t, "apigood", apilock.Analyzer)
}

func TestFlagged(t *testing.T) {
	surface := fixtureSurface(t, "apibad")
	// Drift in both directions: drop Extra from the pin, pin a Gone that
	// the package no longer declares.
	var kept []string
	for _, line := range strings.Split(strings.TrimSuffix(surface, "\n"), "\n") {
		if !strings.Contains(line, "Extra") {
			kept = append(kept, line)
		}
	}
	kept = append(kept, "func Gone()")
	apilock.RegisterGolden("apibad", strings.Join(kept, "\n")+"\n")
	analysistest.Run(t, "apibad", apilock.Analyzer)
}

// TestSurfaceDeterministic pins the renderer's own contract: two loads of
// the same package must render byte-identical surfaces.
func TestSurfaceDeterministic(t *testing.T) {
	a := fixtureSurface(t, "apigood")
	b := fixtureSurface(t, "apigood")
	if a != b {
		t.Fatalf("surface not deterministic:\n%s\nvs\n%s", a, b)
	}
	for _, want := range []string{"type Widget struct", `json:\"name\"`, "func (*Widget).Grow(by int) int", "func Count() int"} {
		if !strings.Contains(a, want) {
			t.Errorf("surface missing %q:\n%s", want, a)
		}
	}
	if strings.Contains(a, "helper") {
		t.Errorf("surface leaked unexported decl:\n%s", a)
	}
}
