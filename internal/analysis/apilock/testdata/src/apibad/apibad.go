// Package apibad is the flagged apilock fixture: the test registers a
// golden missing Extra and pinning a Gone that no longer exists, so the
// analyzer reports drift in both directions at the package clause.
package apibad // want "is not in the pinned surface" "pinned declaration .+ is missing"

// Kept matches the pin.
func Kept() int { return 1 }

// Extra is new since the pin was taken.
func Extra() {}
