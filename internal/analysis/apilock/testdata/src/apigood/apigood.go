// Package apigood is the clean apilock fixture: its exported surface
// matches the golden the test registers.
package apigood

// Widget is a pinned exported type.
type Widget struct {
	Name string `json:"name"`
}

// Grow is a pinned exported method.
func (w *Widget) Grow(by int) int { return by }

// Count is a pinned exported function.
func Count() int { return 0 }

// internal details are not part of the surface.
func helper() int { return 1 }

var _ = helper
