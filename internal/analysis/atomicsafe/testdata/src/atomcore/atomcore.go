// Package atomcore is the atomicsafe fixture dependency: it owns a
// counter field accessed through old-style sync/atomic (exported into
// the atomicsafe fact) and a helper that blocks on a channel (exported
// into the blocking-functions fact).
package atomcore

import "sync/atomic"

// Counter counts hits with old-style atomics.
type Counter struct {
	Hits int64
}

// Add bumps the counter atomically.
func (c *Counter) Add() {
	atomic.AddInt64(&c.Hits, 1)
}

// Drain blocks until a value arrives.
func Drain(ch chan int) int {
	return <-ch
}
