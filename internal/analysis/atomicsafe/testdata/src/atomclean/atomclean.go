// Package atomclean is the clean atomicsafe fixture: typed atomics,
// consistent old-style atomics, locks released before blocking, and
// lock-bearing values moved by pointer.
package atomclean

import (
	"sync"
	"sync/atomic"

	"atomcore"
)

// stats uses typed atomics: mixed representation is impossible.
type stats struct {
	hits atomic.Int64
}

func (s *stats) bump()       { s.hits.Add(1) }
func (s *stats) read() int64 { return s.hits.Load() }

// gen is old-style but accessed atomically everywhere.
var gen int64

func nextGen() int64 {
	return atomic.AddInt64(&gen, 1)
}

type queue struct {
	mu   sync.Mutex
	vals []int
	ch   chan int
}

// push releases the lock before the channel send.
func (q *queue) push(v int) {
	q.mu.Lock()
	q.vals = append(q.vals, v)
	q.mu.Unlock()
	q.ch <- v
}

// drain holds no lock across the blocking callee.
func (q *queue) drain() int {
	q.mu.Lock()
	n := len(q.vals)
	q.mu.Unlock()
	return n + atomcore.Drain(q.ch)
}

// borrow moves the lock by pointer, never by value.
func borrow(q *queue) *sync.Mutex {
	return &q.mu
}

// fresh constructs a new value; construction is not a copy.
func fresh() *queue {
	q := &queue{ch: make(chan int, 1)}
	return q
}
