// Package atomrace is the flagged atomicsafe fixture: mixed
// atomic/plain access (local and via the cross-package fact), lock
// copies, and locks held across blocking operations.
package atomrace

import (
	"sync"
	"sync/atomic"
	"time"

	"atomcore"
)

var ops int64

func bump() {
	atomic.AddInt64(&ops, 1)
}

func readOps() int64 {
	return ops // want "atomrace\.ops is accessed with sync/atomic elsewhere"
}

// readRemote touches a field the atomcore package manages atomically;
// only the imported fact can know that.
func readRemote(c *atomcore.Counter) int64 {
	return c.Hits // want "atomcore\.Counter\.Hits is accessed with sync/atomic elsewhere"
}

type guard struct {
	mu sync.Mutex
	n  int
}

func byValue(g guard) int { // want "byValue passes guard by value, copying its lock state"
	return g.n
}

func copyDeref(g *guard) int {
	snapshot := *g // want "assignment copies lock-bearing value of type guard"
	return snapshot.n
}

func rangeCopy(gs []guard) int {
	total := 0
	for _, g := range gs { // want "range copies lock-bearing values of type guard"
		total += g.n
	}
	return total
}

type queue struct {
	mu sync.Mutex
	ch chan int
}

func (q *queue) pushLocked(v int) {
	q.mu.Lock()
	q.ch <- v // want "q\.mu is held across a channel send"
	q.mu.Unlock()
}

func (q *queue) popLocked() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return <-q.ch // want "q\.mu is held across a channel receive"
}

func (q *queue) sleepy() {
	q.mu.Lock()
	time.Sleep(time.Millisecond) // want "q\.mu is held across a call to time\.Sleep, which may block"
	q.mu.Unlock()
}

// drainLocked blocks through a callee in another package; the blocking
// reach arrives through the fact.
func (q *queue) drainLocked() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return atomcore.Drain(q.ch) // want "q\.mu is held across a call to atomcore\.Drain, which may block"
}

func (q *queue) waitLocked() {
	q.mu.Lock()
	select { // want "q\.mu is held across a blocking select"
	case <-q.ch:
	}
	q.mu.Unlock()
}

// flushWaived records why the slow operation stays under the lock.
func (q *queue) flushWaived() {
	q.mu.Lock()
	time.Sleep(time.Millisecond) //yield:allow(atomicsafe) fixture: the lock exists to serialize the slow flush
	q.mu.Unlock()
}

var _ = bump
