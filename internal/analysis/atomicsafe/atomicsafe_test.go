package atomicsafe_test

import (
	"testing"

	"github.com/cnfet/yieldlab/internal/analysis/analysistest"
	"github.com/cnfet/yieldlab/internal/analysis/atomicsafe"
)

func TestFlagged(t *testing.T) {
	analysistest.Run(t, "atomrace", atomicsafe.Analyzer)
}

func TestClean(t *testing.T) {
	analysistest.Run(t, "atomclean", atomicsafe.Analyzer)
}
