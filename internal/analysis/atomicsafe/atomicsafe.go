// Package atomicsafe implements the yieldvet analyzer guarding the
// concurrency contracts no compiler checks:
//
//   - a location accessed through the old-style sync/atomic functions
//     (atomic.AddInt64(&x.f, ...)) anywhere in the module must never be
//     read or written plainly elsewhere — mixed access is a data race the
//     race detector only catches when the schedule cooperates. The set of
//     atomically-accessed locations travels across packages as a fact, so
//     a consumer package touching a producer's counter field plainly is
//     flagged too. (Typed atomics — atomic.Int64 and friends — make mixed
//     access unrepresentable and are the preferred fix.)
//   - lock-bearing values (sync.Mutex and friends, typed atomics, or
//     structs containing them) must not be copied: by-value parameters and
//     receivers, copies of existing values, and range-value copies are
//     flagged.
//   - a held mutex must not straddle a blocking operation — channel sends
//     and receives, selects without default, or calls into functions that
//     may block (net/http, os file I/O, time.Sleep, WaitGroup.Wait, and —
//     transitively, through the blocking-functions fact — module functions
//     like query's Evaluate that reach such operations). Holding a lock
//     across a block turns every other caller's fast path into that
//     block's hostage; when serializing the slow operation is the lock's
//     entire purpose, the site records that with //yield:allow(atomicsafe).
//
// Goroutine launches and deferred calls are excluded from both blocking
// propagation and held-region scanning: a `go` statement does not block
// its launcher, and defers run at return, where region tracking ends.
package atomicsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/cnfet/yieldlab/internal/analysis"
)

// Analyzer is the atomicsafe analyzer.
var Analyzer = &analysis.Analyzer{
	Name:         "atomicsafe",
	Doc:          "no mixed atomic/plain access, no lock copies, no lock held across blocking calls",
	Run:          run,
	FactComputer: computeFact,
}

// Fact is the per-package fact: locations the package accesses through
// old-style sync/atomic functions, and functions that may block. Both
// sorted.
type Fact struct {
	AtomicFields []string `json:"atomic_fields,omitempty"`
	Blocking     []string `json:"blocking,omitempty"`
}

func computeFact(pass *analysis.Pass) (any, error) {
	atomics := atomicLocations(pass)
	fields := make([]string, 0, len(atomics))
	for key := range atomics {
		fields = append(fields, key)
	}
	sort.Strings(fields)

	blocking := blockingFuncs(pass)
	names := make([]string, 0, len(blocking))
	for fn := range blocking {
		names = append(names, fn.FullName())
	}
	sort.Strings(names)
	return Fact{AtomicFields: fields, Blocking: names}, nil
}

func run(pass *analysis.Pass) error {
	checkMixedAccess(pass)
	checkLockCopies(pass)
	checkHeldLocks(pass)
	return nil
}

// ---- shared call-graph helpers ----

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func packageDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.NonTestFiles() {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					decls[obj] = fn
				}
			}
		}
	}
	return decls
}

// ---- rule 1: mixed atomic/plain access ----

// locationKey names a package-level variable or a struct field accessed
// through &x in an old-style atomic call: "pkgpath.Var" or
// "pkgpath.Type.Field" (receiver-type based, so embedded promotion names
// the outer type consistently on both the atomic and the plain side).
// The owning package path is returned separately so the checker knows
// whose fact to consult.
func locationKey(pass *analysis.Pass, expr ast.Expr) (pkgPath, key string) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		v, ok := pass.TypesInfo.Uses[e].(*types.Var)
		if !ok || v.Pkg() == nil {
			return "", ""
		}
		// Package-level variable only: locals can't be shared by name.
		if v.Parent() != v.Pkg().Scope() {
			return "", ""
		}
		return v.Pkg().Path(), v.Pkg().Path() + "." + v.Name()
	case *ast.SelectorExpr:
		sel, ok := pass.TypesInfo.Selections[e]
		if !ok || sel.Kind() != types.FieldVal {
			return "", ""
		}
		recv := sel.Recv()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return "", ""
		}
		obj := named.Obj()
		return obj.Pkg().Path(), obj.Pkg().Path() + "." + obj.Name() + "." + e.Sel.Name
	}
	return "", ""
}

// atomicArgs returns, for one file, the set of &-operand expressions that
// appear as the location argument of old-style sync/atomic calls.
func atomicArgs(pass *analysis.Pass, file *ast.File) map[ast.Expr]bool {
	out := make(map[ast.Expr]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || fn.Signature().Recv() != nil {
			return true
		}
		for _, arg := range call.Args {
			if unary, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && unary.Op == token.AND {
				out[ast.Unparen(unary.X)] = true
			}
		}
		return true
	})
	return out
}

// atomicLocations collects the location keys this package accesses
// atomically (old style).
func atomicLocations(pass *analysis.Pass) map[string]bool {
	out := make(map[string]bool)
	for _, file := range pass.NonTestFiles() {
		for expr := range atomicArgs(pass, file) {
			if _, key := locationKey(pass, expr); key != "" {
				out[key] = true
			}
		}
	}
	return out
}

func checkMixedAccess(pass *analysis.Pass) {
	atomics := atomicLocations(pass)
	factCache := make(map[string]map[string]bool)
	isAtomic := func(pkgPath, key string) bool {
		if pkgPath == pass.Pkg.Path() {
			return atomics[key]
		}
		set, ok := factCache[pkgPath]
		if !ok {
			set = make(map[string]bool)
			var fact Fact
			if pass.PackageFact(pkgPath, &fact) {
				for _, f := range fact.AtomicFields {
					set[f] = true
				}
			}
			factCache[pkgPath] = set
		}
		return set[key]
	}

	for _, file := range pass.NonTestFiles() {
		exempt := atomicArgs(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			expr, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			switch expr.(type) {
			case *ast.Ident, *ast.SelectorExpr:
			default:
				return true
			}
			if exempt[expr] {
				return true
			}
			pkgPath, key := locationKey(pass, expr)
			if key == "" || !isAtomic(pkgPath, key) {
				return true
			}
			pass.Reportf(expr.Pos(),
				"%s is accessed with sync/atomic elsewhere — this plain access races with it; use the atomic API (or a typed atomic) here too",
				key)
			return false
		})
	}
}

// ---- rule 2: lock copies ----

// copiesLock reports whether t transitively contains a lock-bearing type:
// anything from sync or sync/atomic (except the Locker interface).
// Pointers, slices, maps and channels break containment.
func copiesLock(t types.Type) bool {
	seen := make(map[types.Type]bool)
	var walk func(types.Type) bool
	walk = func(t types.Type) bool {
		if seen[t] {
			return false
		}
		seen[t] = true
		switch tt := t.(type) {
		case *types.Named:
			obj := tt.Obj()
			if obj.Pkg() != nil {
				switch obj.Pkg().Path() {
				case "sync", "sync/atomic":
					_, isIface := tt.Underlying().(*types.Interface)
					return !isIface
				}
			}
			return walk(tt.Underlying())
		case *types.Struct:
			for i := 0; i < tt.NumFields(); i++ {
				if walk(tt.Field(i).Type()) {
					return true
				}
			}
		case *types.Array:
			return walk(tt.Elem())
		}
		return false
	}
	return walk(t)
}

// copySource reports whether an expression produces a copy of an existing
// value (as opposed to a freshly constructed one).
func copySource(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}

func checkLockCopies(pass *analysis.Pass) {
	describe := func(t types.Type) string {
		return types.TypeString(t, types.RelativeTo(pass.Pkg))
	}
	for _, file := range pass.NonTestFiles() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			var fields []*ast.Field
			if fn.Recv != nil {
				fields = append(fields, fn.Recv.List...)
			}
			if fn.Type.Params != nil {
				fields = append(fields, fn.Type.Params.List...)
			}
			for _, field := range fields {
				t := pass.TypesInfo.TypeOf(field.Type)
				if t == nil {
					continue
				}
				if _, isPtr := t.(*types.Pointer); isPtr {
					continue
				}
				if copiesLock(t) {
					pass.Reportf(field.Type.Pos(),
						"%s passes %s by value, copying its lock state — take a pointer",
						fn.Name.Name, describe(t))
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i, rhs := range s.Rhs {
					if !copySource(rhs) {
						continue
					}
					t := pass.TypesInfo.TypeOf(rhs)
					if t != nil && copiesLock(t) {
						pass.Reportf(s.Lhs[i].Pos(),
							"assignment copies lock-bearing value of type %s — use a pointer",
							describe(t))
					}
				}
			case *ast.RangeStmt:
				if s.Value == nil {
					return true
				}
				t := pass.TypesInfo.TypeOf(s.Value)
				if t != nil && copiesLock(t) {
					pass.Reportf(s.Value.Pos(),
						"range copies lock-bearing values of type %s — iterate by index or over pointers",
						describe(t))
				}
			}
			return true
		})
	}
}

// ---- rule 3: lock held across blocking operation ----

// osBlockingFuncs are the file-I/O entry points of package os.
var osBlockingFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true, "Rename": true,
	"Remove": true, "RemoveAll": true, "Mkdir": true, "MkdirAll": true,
	"MkdirTemp": true, "Stat": true, "Lstat": true, "Truncate": true,
	"Chtimes": true, "Symlink": true, "Link": true,
}

// blockingRoot reports whether a resolved callee blocks by nature.
func blockingRoot(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "net/http", "net":
		return true
	case "os":
		if fn.Signature().Recv() == nil {
			return osBlockingFuncs[fn.Name()]
		}
		return true // *os.File and friends: Read, Write, Sync, Close...
	case "time":
		return fn.Name() == "Sleep"
	case "sync":
		// (*WaitGroup).Wait blocks while holding whatever the caller
		// holds. (*Cond).Wait is excluded: its contract requires holding
		// the associated lock and it releases it while parked.
		if fn.Name() != "Wait" {
			return false
		}
		recv := fn.Signature().Recv()
		if recv == nil {
			return false
		}
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		return ok && named.Obj().Name() == "WaitGroup"
	}
	return false
}

// hasBlockingOp reports whether a function body directly contains a
// blocking operation, excluding goroutine launches, defers and nested
// function literals.
func hasBlockingOp(pass *analysis.Pass, body *ast.BlockStmt, blockingCall func(*ast.CallExpr) bool) bool {
	found := false
	skip := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if found || skip[n] {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			skip[n.Call] = true // args evaluate here, the call does not
			return true
		case *ast.DeferStmt:
			skip[n.Call] = true
			return true
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if blockingCall(n) {
				found = true
			}
		}
		return !found
	})
	return found
}

// blockingFuncs computes this package's may-block set: functions whose
// bodies contain a blocking operation or a call to a blocking function
// (local fixpoint; cross-package via the Blocking fact).
func blockingFuncs(pass *analysis.Pass) map[*types.Func]bool {
	decls := packageDecls(pass)
	blocking := make(map[*types.Func]bool)
	imported := make(map[string]map[string]bool)
	external := func(fn *types.Func) bool {
		if blockingRoot(fn) {
			return true
		}
		pkg := fn.Pkg()
		if pkg == nil || pkg == pass.Pkg {
			return false
		}
		set, ok := imported[pkg.Path()]
		if !ok {
			set = make(map[string]bool)
			var fact Fact
			if pass.PackageFact(pkg.Path(), &fact) {
				for _, name := range fact.Blocking {
					set[name] = true
				}
			}
			imported[pkg.Path()] = set
		}
		return set[fn.FullName()]
	}
	blockingCall := func(call *ast.CallExpr) bool {
		callee := calleeFunc(pass, call)
		if callee == nil {
			return false
		}
		if callee.Pkg() == pass.Pkg {
			return blocking[callee]
		}
		return external(callee)
	}
	for changed := true; changed; {
		changed = false
		for obj, decl := range decls {
			if blocking[obj] {
				continue
			}
			if hasBlockingOp(pass, decl.Body, blockingCall) {
				blocking[obj] = true
				changed = true
			}
		}
	}
	return blocking
}

// lockChain renders the receiver of a Lock/Unlock call as a stable
// name ("mu", "s.persistMu"); "" when it is not a plain ident chain.
func lockChain(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if prefix := lockChain(e.X); prefix != "" {
			return prefix + "." + e.Sel.Name
		}
	}
	return ""
}

// lockOp classifies a statement as Lock/Unlock on a sync mutex, returning
// the lock's chain name.
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (chain string, lock, unlock bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Signature().Recv() == nil {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return lockChain(sel.X), true, false
	case "Unlock", "RUnlock":
		return lockChain(sel.X), false, true
	}
	return "", false, false
}

func checkHeldLocks(pass *analysis.Pass) {
	blocking := blockingFuncs(pass)
	imported := make(map[string]map[string]bool)
	blockingCallee := func(call *ast.CallExpr) (string, bool) {
		callee := calleeFunc(pass, call)
		if callee == nil {
			return "", false
		}
		if callee.Pkg() == pass.Pkg {
			if blocking[callee] {
				return callee.Name(), true
			}
			return "", false
		}
		if blockingRoot(callee) {
			return callee.Pkg().Name() + "." + callee.Name(), true
		}
		pkg := callee.Pkg()
		if pkg == nil {
			return "", false
		}
		set, ok := imported[pkg.Path()]
		if !ok {
			set = make(map[string]bool)
			var fact Fact
			if pass.PackageFact(pkg.Path(), &fact) {
				for _, name := range fact.Blocking {
					set[name] = true
				}
			}
			imported[pkg.Path()] = set
		}
		if set[callee.FullName()] {
			return pkg.Name() + "." + callee.Name(), true
		}
		return "", false
	}

	heldDesc := func(held map[string]token.Pos) string {
		chains := make([]string, 0, len(held))
		for chain := range held {
			chains = append(chains, chain)
		}
		sort.Strings(chains)
		return strings.Join(chains, ", ")
	}
	noDefault := func(s *ast.SelectStmt) bool {
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				return false
			}
		}
		return true
	}
	var checkList func(stmts []ast.Stmt, held map[string]token.Pos)
	reportOps := func(stmt ast.Stmt, held map[string]token.Pos) {
		if len(held) == 0 {
			return
		}
		desc := heldDesc(held)
		skip := make(map[ast.Node]bool)
		ast.Inspect(stmt, func(n ast.Node) bool {
			if skip[n] {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				skip[n.Call] = true
				return true
			case *ast.DeferStmt:
				skip[n.Call] = true
				return true
			case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
				*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt:
				if n != stmt {
					return false // nested statements get their own visit
				}
				return true
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "%s is held across a channel send — shrink the critical section", desc)
				return false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "%s is held across a channel receive — shrink the critical section", desc)
					return false
				}
			case *ast.CallExpr:
				if name, isBlocking := blockingCallee(n); isBlocking {
					pass.Reportf(n.Pos(), "%s is held across a call to %s, which may block — shrink the critical section or record the intent with //yield:allow(atomicsafe)", desc, name)
					return false
				}
			}
			return true
		})
	}
	checkList = func(stmts []ast.Stmt, held map[string]token.Pos) {
		for _, stmt := range stmts {
			switch s := stmt.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					if chain, lock, unlock := lockOp(pass, call); chain != "" {
						if lock {
							held[chain] = call.Pos()
							continue
						}
						if unlock {
							delete(held, chain)
							continue
						}
					}
				}
			case *ast.DeferStmt:
				// defer mu.Unlock() keeps the lock to function end; region
				// tracking simply continues. Other defers run at return,
				// outside the region.
				continue
			case *ast.SelectStmt:
				// A select without a default is itself the blocking op.
				if len(held) > 0 && noDefault(s) {
					pass.Reportf(s.Pos(), "%s is held across a blocking select — shrink the critical section", heldDesc(held))
				}
				for _, sub := range stmtBodies(stmt) {
					checkList(sub, held)
				}
				continue
			}
			reportOps(stmt, held)
			for _, sub := range stmtBodies(stmt) {
				checkList(sub, held)
			}
		}
	}

	for _, file := range pass.NonTestFiles() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkList(fn.Body.List, make(map[string]token.Pos))
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkList(lit.Body.List, make(map[string]token.Pos))
					return false
				}
				return true
			})
		}
	}
}

// stmtBodies returns the nested statement lists of one statement.
func stmtBodies(stmt ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		out = append(out, s.List)
	case *ast.IfStmt:
		out = append(out, s.Body.List)
		if s.Else != nil {
			out = append(out, []ast.Stmt{s.Else})
		}
	case *ast.ForStmt:
		out = append(out, s.Body.List)
	case *ast.RangeStmt:
		out = append(out, s.Body.List)
	case *ast.SwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, []ast.Stmt{s.Stmt})
	}
	return out
}
