// Package obs mirrors the real span API's shape for the spanbalance
// fixtures: same names, same signatures, no behavior.
package obs

import "context"

// Span is the fixture span.
type Span struct{ ended bool }

// Start opens a span and derives a context carrying it.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	_ = name
	return ctx, &Span{}
}

// StartLeaf opens a deliberate leaf span.
func StartLeaf(ctx context.Context, name string) *Span {
	_, sp := Start(ctx, name)
	return sp
}

// End closes the span.
func (s *Span) End() {
	if s != nil {
		s.ended = true
	}
}

// SetAttr records an attribute.
func (s *Span) SetAttr(key string, value any) { _, _ = key, value }

// SetName renames the span.
func (s *Span) SetName(name string) { _ = name }
