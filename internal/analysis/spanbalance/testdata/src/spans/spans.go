// Package spans is the flagged spanbalance fixture: spans that leak
// through return paths, discarded derived contexts, and discarded spans.
package spans

import (
	"context"
	"errors"

	"obs"
)

func step(ctx context.Context) error {
	return ctx.Err()
}

// missingEnd leaks its span through the early error return.
func missingEnd(ctx context.Context) error {
	ctx, sp := obs.Start(ctx, "work") // want "span sp is not ended on the return path"
	if err := step(ctx); err != nil {
		return err
	}
	sp.End()
	return nil
}

// fallsOff leaks its span by falling off the end of the function.
func fallsOff(ctx context.Context) {
	sp := obs.StartLeaf(ctx, "tail") // want "span sp is not ended before the function falls off the end"
	sp.SetAttr("k", 1)
}

// discardedCtx hides a deliberate leaf span behind a dropped context:
// under the discarded context every nested Start would silently become a
// sibling, so the leaf must be spelled obs.StartLeaf.
func discardedCtx(ctx context.Context) {
	_, sp := obs.Start(ctx, "leaf") // want "derived context from obs.Start discarded"
	defer sp.End()
}

// discardedSpan can never end what it started.
func discardedSpan(ctx context.Context) context.Context {
	ctx2, _ := obs.Start(ctx, "lost") // want "span from obs.Start discarded"
	return ctx2
}

// fireAndForget drops both results on the floor.
func fireAndForget(ctx context.Context) {
	obs.Start(ctx, "untracked") // want "result of obs.Start discarded"
}

// endedInOneBranchOnly ends the span in the if body, which does not
// dominate the return after it.
func endedInOneBranchOnly(ctx context.Context, fast bool) error {
	sp := obs.StartLeaf(ctx, "branchy") // want "span sp is not ended on the return path"
	if fast {
		sp.End()
	}
	return errors.New("done")
}

// waived records why the dropped context is fine.
func waived(ctx context.Context) {
	_, sp := obs.Start(ctx, "leaf") //yield:allow(spanbalance) fixture: legacy call site kept verbatim for the waiver test
	defer sp.End()
}
