// Package spansclean is the clean spanbalance fixture: every shape the
// analyzer vouches for, none flagged.
package spansclean

import (
	"context"

	"obs"
)

func step(ctx context.Context) error {
	return ctx.Err()
}

// deferred is the canonical shape: derive, defer, thread.
func deferred(ctx context.Context) error {
	ctx, sp := obs.Start(ctx, "work")
	defer sp.End()
	return step(ctx)
}

// dominated ends the span explicitly before every return.
func dominated(ctx context.Context) error {
	ctx, sp := obs.Start(ctx, "work")
	if err := step(ctx); err != nil {
		sp.End()
		return err
	}
	sp.End()
	return nil
}

// leaf makes the no-derived-context intent explicit with StartLeaf.
func leaf(ctx context.Context, rounds int) float64 {
	sp := obs.StartLeaf(ctx, "mc.run")
	total := 0.0
	for i := 0; i < rounds; i++ {
		total += float64(i)
	}
	sp.SetAttr("rounds", rounds)
	sp.End()
	return total
}

// finish is an ender helper: it ends its span parameter on all paths, so
// calling it counts as ending the span.
func finish(sp *obs.Span, hit bool) {
	if sp == nil {
		return
	}
	if hit {
		sp.SetName("sweep.cache_hit")
	}
	sp.End()
}

// viaEnder delegates the End to the helper.
func viaEnder(ctx context.Context, hit bool) error {
	sp := obs.StartLeaf(ctx, "sweep")
	if err := step(ctx); err != nil {
		sp.End()
		return err
	}
	finish(sp, hit)
	return nil
}

// deferredClosure ends through a deferred literal.
func deferredClosure(ctx context.Context) error {
	ctx, sp := obs.Start(ctx, "work")
	defer func() {
		sp.SetAttr("done", true)
		sp.End()
	}()
	return step(ctx)
}

// guarded ends under a non-nil guard, which is semantically
// unconditional: on a nil span End is a no-op anyway.
func guarded(ctx context.Context) error {
	ctx, sp := obs.Start(ctx, "work")
	if err := step(ctx); err != nil {
		sp.End()
		return err
	}
	if sp != nil {
		sp.End()
	}
	return nil
}
