// Package spanbalance implements the yieldvet analyzer enforcing the obs
// span contract at every obs.Start/obs.StartLeaf call site:
//
//   - the span is ended on all return paths — a defer, an End (or a call
//     to a same-package "ender" helper, one that provably ends its *Span
//     parameter on all of its own paths) dominating each return, or a
//     deferred closure that ends it;
//   - obs.Start's derived context is used, not discarded: under a dropped
//     context every nested Start silently becomes a sibling, so deliberate
//     leaf spans must say so by calling obs.StartLeaf instead (or carry a
//     //yield:allow(spanbalance) waiver);
//   - the span result itself is never discarded — a span nothing holds
//     can never be ended.
//
// The path analysis is lexical, not a full CFG: straight-line statements
// propagate the "ended" state, conditional and loop bodies are checked
// with an inherited copy (an End inside a branch does not count after
// it), and a span that escapes the function — stored, returned, passed to
// a non-ender call, captured by a non-deferred closure — is assumed
// handled by its new owner. goto (or a span bound somewhere the walker
// cannot follow) likewise ends tracking conservatively: spanbalance
// prefers silence to false alarms, and the golden fixtures pin down
// exactly which shapes it vouches for.
package spanbalance

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/cnfet/yieldlab/internal/analysis"
)

// Analyzer is the spanbalance analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "spanbalance",
	Doc:  "obs spans must be ended on all return paths and derived contexts must be used",
	Run:  run,
}

// safeMethods are *obs.Span methods that neither end nor leak the span.
var safeMethods = map[string]bool{
	"SetAttr":   true,
	"SetName":   true,
	"MC":        true,
	"Name":      true,
	"Duration":  true,
	"Attrs":     true,
	"AttrValue": true,
	"Children":  true,
}

type checker struct {
	pass   *analysis.Pass
	enders map[*types.Func]bool
	// decls maps this package's functions to their declarations, for
	// ender-candidate analysis.
	decls map[*types.Func]*ast.FuncDecl
	// inProgress guards recursive ender analysis against call cycles.
	inProgress map[*types.Func]bool
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "obs" {
		return nil // the span API's own wrappers are not call sites
	}
	c := &checker{
		pass:       pass,
		enders:     make(map[*types.Func]bool),
		decls:      make(map[*types.Func]*ast.FuncDecl),
		inProgress: make(map[*types.Func]bool),
	}
	for _, file := range pass.NonTestFiles() {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					c.decls[obj] = fn
				}
			}
		}
	}
	for _, file := range pass.NonTestFiles() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c.checkBlocks(fn.Body.List, true)
			// Spans inside function literals are checked against the
			// literal's own body.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					c.checkBlocks(lit.Body.List, true)
					return false
				}
				return true
			})
		}
	}
	return nil
}

// checkBlocks scans one statement list for span bindings, recursing into
// nested blocks. terminal reports whether falling off the end of this list
// falls off the end of the enclosing function.
func (c *checker) checkBlocks(stmts []ast.Stmt, terminal bool) {
	for i, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			c.checkBinding(s, stmts[i+1:], terminal)
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if kind := c.startKind(call); kind != notStart {
					c.pass.Reportf(call.Pos(),
						"result of obs.%s discarded — a span nothing holds can never be ended", kind)
				}
			}
		}
		for _, sub := range subBlocks(stmt) {
			c.checkBlocks(sub, false)
		}
	}
}

// subBlocks returns the nested statement lists of one statement (branch
// and loop bodies), excluding function literals.
func subBlocks(stmt ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		out = append(out, s.List)
	case *ast.IfStmt:
		out = append(out, s.Body.List)
		if s.Else != nil {
			out = append(out, []ast.Stmt{s.Else})
		}
	case *ast.ForStmt:
		out = append(out, s.Body.List)
	case *ast.RangeStmt:
		out = append(out, s.Body.List)
	case *ast.SwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, []ast.Stmt{s.Stmt})
	}
	return out
}

type startKind string

const (
	notStart      startKind = ""
	startCall     startKind = "Start"
	startLeafCall startKind = "StartLeaf"
)

func (k startKind) String() string { return string(k) }

// startKind classifies a call as obs.Start, obs.StartLeaf, or neither.
func (c *checker) startKind(call *ast.CallExpr) startKind {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return notStart
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "obs" {
		return notStart
	}
	switch fn.Name() {
	case "Start":
		return startCall
	case "StartLeaf":
		return startLeafCall
	}
	return notStart
}

// checkBinding handles an assignment whose RHS starts spans: discard
// rules, then End-on-all-paths over the rest of the binding's block.
func (c *checker) checkBinding(assign *ast.AssignStmt, rest []ast.Stmt, terminal bool) {
	type binding struct {
		call *ast.CallExpr
		kind startKind
		span ast.Expr
		ctx  ast.Expr // nil for StartLeaf
	}
	var bindings []binding
	if len(assign.Rhs) == 1 {
		if call, ok := assign.Rhs[0].(*ast.CallExpr); ok {
			if kind := c.startKind(call); kind == startCall && len(assign.Lhs) == 2 {
				bindings = append(bindings, binding{call, kind, assign.Lhs[1], assign.Lhs[0]})
			} else if kind == startLeafCall && len(assign.Lhs) == 1 {
				bindings = append(bindings, binding{call, kind, assign.Lhs[0], nil})
			}
		}
	} else {
		for i, rhs := range assign.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok && c.startKind(call) == startLeafCall {
				bindings = append(bindings, binding{call, startLeafCall, assign.Lhs[i], nil})
			}
		}
	}
	for _, b := range bindings {
		if isBlank(b.span) {
			c.pass.Reportf(b.call.Pos(),
				"span from obs.%s discarded — a span nothing holds can never be ended", b.kind)
			continue
		}
		if b.ctx != nil && isBlank(b.ctx) {
			c.pass.Reportf(b.call.Pos(),
				"derived context from obs.Start discarded — thread it, or make the leaf span explicit with obs.StartLeaf")
		}
		sp := c.spanObject(b.span)
		if sp == nil {
			continue // bound to a field or index expression: owner's problem
		}
		c.checkEnded(b.call, sp, rest, terminal)
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// spanObject resolves the variable a span was bound to.
func (c *checker) spanObject(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}

// pathState tracks whether the span is ended along the current
// straight-line path.
type pathState struct {
	ended    bool
	deferred bool
}

// checkEnded verifies sp is ended on every path through rest, reporting at
// the Start call. Any shape the lexical walker cannot follow (escape,
// goto) ends tracking without a report.
func (c *checker) checkEnded(start *ast.CallExpr, sp types.Object, rest []ast.Stmt, terminal bool) {
	var st pathState
	pos, ok := c.walk(rest, sp, &st, terminal)
	if !ok {
		return // escaped or untrackable: assume handled
	}
	if pos.IsValid() {
		c.pass.Reportf(start.Pos(),
			"span %s is not ended on the return path at %s — defer %s.End() or end it before returning",
			sp.Name(), c.pass.Fset.Position(pos), sp.Name())
		return
	}
	if terminal && !st.ended && !st.deferred && !terminates(rest) {
		c.pass.Reportf(start.Pos(),
			"span %s is not ended before the function falls off the end — defer %s.End() or end it on every path",
			sp.Name(), sp.Name())
	}
}

// walk processes stmts in order, updating st. It returns the position of
// the first return the span can leak through (NoPos if none) and whether
// tracking survived (false: the span escaped or control flow is
// untrackable, stop without reporting).
func (c *checker) walk(stmts []ast.Stmt, sp types.Object, st *pathState, terminal bool) (token.Pos, bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && c.endsSpan(call, sp) {
				st.ended = true
				continue
			}
		case *ast.DeferStmt:
			if c.endsSpan(s.Call, sp) {
				st.deferred = true
				continue
			}
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok && c.litEndsSpan(lit, sp) {
				st.deferred = true
				continue
			}
		case *ast.ReturnStmt:
			if st.ended || st.deferred {
				return token.NoPos, true // nothing after a return is reachable
			}
			if c.mentions(s, sp) {
				// e.g. `return handoff(sp)`: the span leaves through the
				// return value; its new owner ends it.
				return token.NoPos, false
			}
			return s.Pos(), true
		case *ast.BranchStmt:
			if s.Tok == token.GOTO {
				return token.NoPos, false
			}
		case *ast.IfStmt:
			// Nil-guard idioms get exact treatment: under `sp == nil`
			// every span method is a no-op, so returning early leaks
			// nothing; under `sp != nil` an End in the body is
			// semantically unconditional.
			if s.Init == nil && s.Else == nil {
				switch nilCheck(c.pass, s.Cond, sp) {
				case spanIsNil:
					continue
				case spanNonNil:
					if pos, ok := c.walk(s.Body.List, sp, st, false); !ok {
						return token.NoPos, false
					} else if pos.IsValid() {
						return pos, true
					}
					continue
				}
			}
		case *ast.AssignStmt:
			// A rebind of the span variable (or any other use the escape
			// scan finds below) gives up tracking.
		}
		if c.escapes(stmt, sp) {
			return token.NoPos, false
		}
		// Branch and loop bodies are checked with an inherited copy of the
		// state: an End inside them does not dominate the code after.
		for _, sub := range subBlocks(stmt) {
			copySt := *st
			if pos, ok := c.walk(sub, sp, &copySt, false); !ok {
				return token.NoPos, false
			} else if pos.IsValid() {
				return pos, true
			}
		}
	}
	return token.NoPos, true
}

// nilCheckResult classifies an if condition relative to the span variable.
type nilCheckResult int

const (
	notNilCheck nilCheckResult = iota
	spanIsNil
	spanNonNil
)

// nilCheck recognizes `sp == nil` and `sp != nil` conditions.
func nilCheck(pass *analysis.Pass, cond ast.Expr, sp types.Object) nilCheckResult {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return notNilCheck
	}
	isSp := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == sp
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if !(isSp(bin.X) && isNil(bin.Y)) && !(isNil(bin.X) && isSp(bin.Y)) {
		return notNilCheck
	}
	if bin.Op == token.EQL {
		return spanIsNil
	}
	return spanNonNil
}

// mentions reports whether node references sp at all.
func (c *checker) mentions(node ast.Node, sp types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == sp {
			found = true
		}
		return !found
	})
	return found
}

// terminates reports whether a statement list cannot fall off its end.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ForStmt:
		return s.Cond == nil // for {}: only leaves via return/break inside
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// endsSpan reports whether call ends sp: sp.End(), or a same-package
// ender helper taking sp as an argument.
func (c *checker) endsSpan(call *ast.CallExpr, sp types.Object) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == sp && sel.Sel.Name == "End" {
			return true
		}
	}
	usesSp := false
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == sp {
			usesSp = true
		}
	}
	if !usesSp {
		return false
	}
	var calleeID *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		calleeID = fun
	case *ast.SelectorExpr:
		calleeID = fun.Sel
	default:
		return false
	}
	callee, ok := c.pass.TypesInfo.Uses[calleeID].(*types.Func)
	if !ok {
		return false
	}
	return c.isEnder(callee)
}

// litEndsSpan recognizes `defer func() { ... sp.End() ... }()`.
func (c *checker) litEndsSpan(lit *ast.FuncLit, sp types.Object) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == sp && sel.Sel.Name == "End" {
				found = true
			}
		}
		return !found
	})
	return found
}

// isEnder reports whether fn is an "ender": a function in this package
// with a *obs.Span parameter that it ends on all of its own paths.
// Results are memoized; recursion through call cycles resolves to false.
func (c *checker) isEnder(fn *types.Func) bool {
	if ender, ok := c.enders[fn]; ok {
		return ender
	}
	if c.inProgress[fn] {
		return false
	}
	decl, ok := c.decls[fn]
	if !ok {
		return false
	}
	var spanParam types.Object
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isSpanPtr(p.Type()) {
			spanParam = p
			break
		}
	}
	if spanParam == nil {
		c.enders[fn] = false
		return false
	}
	c.inProgress[fn] = true
	var st pathState
	pos, tracked := c.walk(decl.Body.List, spanParam, &st, true)
	ender := tracked && !pos.IsValid() && (st.ended || st.deferred)
	delete(c.inProgress, fn)
	c.enders[fn] = ender
	return ender
}

func isSpanPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Name() == "obs" && obj.Name() == "Span"
}

// escapes reports whether stmt uses sp in any way the walker does not
// model: passed to a non-ender call, stored, returned, compared, captured
// by a closure. Safe span methods and recognized End/ender calls are
// excluded.
func (c *checker) escapes(stmt ast.Stmt, sp types.Object) bool {
	consumed := make(map[*ast.Ident]bool)
	// Pre-consume the idents of recognized end shapes so the generic scan
	// below only sees unexplained uses.
	preconsume := func(call *ast.CallExpr) {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
			if id, ok := sel.X.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == sp {
				consumed[id] = true
			}
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == sp && c.endsSpan(call, sp) {
				consumed[id] = true
			}
		}
	}
	var allowLit *ast.FuncLit
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			preconsume(call)
		}
	case *ast.DeferStmt:
		preconsume(s.Call)
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok && c.litEndsSpan(lit, sp) {
			allowLit = lit
		}
	}
	escaped := false
	var scan func(n ast.Node) bool
	scan = func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if n == allowLit {
				return true
			}
			// A non-deferred closure capturing the span owns it now.
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == sp {
					escaped = true
				}
				return !escaped
			})
			return false
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == sp &&
				(safeMethods[n.Sel.Name] || n.Sel.Name == "End") {
				consumed[id] = true
			}
		case *ast.Ident:
			if c.pass.TypesInfo.Uses[n] == sp && !consumed[n] {
				escaped = true
			}
		}
		return !escaped
	}
	// Branch bodies are scanned by their own walk recursion; here only the
	// statement's non-block parts matter. Scanning the whole statement
	// would double-report but never mis-report, so keep it simple.
	ast.Inspect(stmt, scan)
	return escaped
}
