package spanbalance_test

import (
	"testing"

	"github.com/cnfet/yieldlab/internal/analysis/analysistest"
	"github.com/cnfet/yieldlab/internal/analysis/spanbalance"
)

func TestFlagged(t *testing.T) {
	analysistest.Run(t, "spans", spanbalance.Analyzer)
}

func TestClean(t *testing.T) {
	analysistest.Run(t, "spansclean", spanbalance.Analyzer)
}
