package canonical_test

import (
	"testing"

	"github.com/cnfet/yieldlab/internal/analysis/analysistest"
	"github.com/cnfet/yieldlab/internal/analysis/canonical"
)

func TestCanonicalExhaustiveness(t *testing.T) {
	analysistest.Run(t, "query", canonical.Analyzer)
}
