// Package query is a canonical fixture: structs with a Canonical method
// must mention every exported field in it.
package query

// Spec mimics the real QuerySpec: Canonical handles most fields, waives
// one explicitly and forgets another — the forgotten one must be flagged.
type Spec struct {
	Kind    string
	WidthNM float64
	// GridStep passes through verbatim by design: it changes the cache
	// identity, never a result.
	GridStep float64 //yield:allow(canonical) grid geometry is cache identity by design, passed through verbatim
	Rounds   int     // want "exported field Spec.Rounds is never mentioned in Canonical"

	hidden int // unexported fields are not part of the contract
}

// Canonical normalizes the spec. Rounds is (deliberately, for the test)
// never mentioned.
func (q Spec) Canonical() (Spec, string) {
	c := q
	if c.Kind == "" {
		c.Kind = "pf"
	}
	if c.WidthNM < 0 {
		c.WidthNM = 0
	}
	_ = c.hidden
	return c, c.Kind
}

// Point has no Canonical method, so nothing is required of it.
type Point struct {
	X, Y float64
}

// Complete mentions every exported field, partly via a composite literal.
type Complete struct {
	A string
	B int
}

// Canonical normalizes a Complete.
func (c Complete) Canonical() Complete {
	return Complete{A: c.A, B: 0}
}
