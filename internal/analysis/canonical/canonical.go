// Package canonical checks that canonical fingerprints cannot silently
// fork: for every named struct type that declares a Canonical method (the
// query.Spec pattern — normalize the spec, hash it into the qs1- cache and
// ETag identity), every exported field of the struct must be mentioned
// somewhere in the method body.
//
// The reasoning: Canonical's job is to decide, field by field, whether a
// field is normalized, zeroed for irrelevant kinds, or passed through into
// the fingerprint. A field the method never names has made none of those
// decisions — typically a freshly added sweep axis — and two specs
// differing only in it would either share a fingerprint they must not, or
// split one they must share. Fields that are deliberately passed through
// verbatim are waived field-by-field with
//
//	//yield:allow(canonical) reason
//
// on the field's declaration line, so the waiver and its justification
// live next to the field a reviewer reads.
package canonical

import (
	"go/ast"
	"go/types"

	"github.com/cnfet/yieldlab/internal/analysis"
)

// Analyzer is the canonical-exhaustiveness checker.
var Analyzer = &analysis.Analyzer{
	Name: "canonical",
	Doc:  "every exported field of a struct with a Canonical method must be mentioned (or waived) in that method",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	files := pass.NonTestFiles()

	// Pass 1: find Canonical methods and their receiver struct types.
	type subject struct {
		named  *types.Named
		strct  *types.Struct
		method *ast.FuncDecl
	}
	var subjects []subject
	for _, file := range files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != "Canonical" || fn.Recv == nil || fn.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fn.Name]
			method, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			recv := method.Type().(*types.Signature).Recv()
			if recv == nil {
				continue
			}
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				continue
			}
			strct, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			subjects = append(subjects, subject{named: named, strct: strct, method: fn})
		}
	}

	for _, s := range subjects {
		mentioned := fieldMentions(pass, s.method, s.named)
		for i := 0; i < s.strct.NumFields(); i++ {
			f := s.strct.Field(i)
			if !f.Exported() || mentioned[f.Name()] {
				continue
			}
			pass.Reportf(f.Pos(),
				"exported field %s.%s is never mentioned in Canonical(): normalize it, zero it for irrelevant kinds, or waive it with //yield:allow(canonical)",
				s.named.Obj().Name(), f.Name())
		}
	}
	return nil
}

// fieldMentions collects the names of named's fields selected anywhere in
// the method body (x.Field on a value of the receiver type, directly or
// through a pointer) or set in a composite literal of the type.
func fieldMentions(pass *analysis.Pass, method *ast.FuncDecl, named *types.Named) map[string]bool {
	mentioned := make(map[string]bool)
	ast.Inspect(method.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			sel, ok := pass.TypesInfo.Selections[n]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			recv := sel.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if rn, ok := recv.(*types.Named); ok && rn.Obj() == named.Obj() {
				mentioned[n.Sel.Name] = true
			}
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[n]
			if !ok {
				return true
			}
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if rn, ok := t.(*types.Named); !ok || rn.Obj() != named.Obj() {
				return true
			}
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						mentioned[id.Name] = true
					}
				}
			}
		}
		return true
	})
	return mentioned
}
