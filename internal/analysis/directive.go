package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// This file parses the repo's //yield: comment directives:
//
//	//yield:noalloc
//	    on a function's doc comment: the function promises zero
//	    steady-state heap allocations. The noalloc analyzer AST-checks the
//	    body and `yieldvet escape` confirms it against the compiler's
//	    escape analysis.
//
//	//yield:allow(rule) reason
//	    on (or immediately above) a flagged line: suppresses diagnostics
//	    of the named rule on that line. The reason is mandatory — a
//	    suppression without a recorded justification is itself an error —
//	    and stale suppressions (no diagnostic left to suppress) fail the
//	    run, so annotations cannot outlive the code they excuse.
//
//	//yield:compute
//	    in a package's doc comment: the package is part of the numeric
//	    compute pipeline and opts into the determinism invariants. The
//	    determinism analyzer discovers its targets through this directive
//	    instead of a hardcoded package list, so new compute packages are
//	    covered the moment they declare themselves.
//
// Directives use the //-comment form only, like //go: pragmas; a directive
// inside a /* */ block is reported as malformed rather than ignored, so a
// typo cannot silently disable enforcement.

// DirNoalloc is the function-annotation directive name.
const DirNoalloc = "noalloc"

// DirCompute is the package-annotation directive name: a package whose doc
// comment carries //yield:compute opts into the determinism invariants.
const DirCompute = "compute"

// An Allow is one parsed //yield:allow directive.
type Allow struct {
	Pos    token.Pos // position of the comment
	Line   int       // line the comment sits on
	File   string    // file name (from the FileSet)
	Rule   string    // rule name inside the parentheses
	Reason string    // justification text after the parentheses
	used   bool      // set by Check when the allow suppresses a finding
}

// Directives is the parsed directive set of one package.
type Directives struct {
	// Allows indexes suppressions by file, then by the line they cover:
	// a trailing allow covers its own line, an allow on a line of its own
	// covers the next line.
	Allows map[string]map[int][]*Allow

	// Noalloc holds the declarations annotated //yield:noalloc.
	Noalloc []*ast.FuncDecl

	// Compute reports whether any file's package doc carries
	// //yield:compute.
	Compute bool

	// Problems are malformed directives: bad syntax, unknown directive
	// names, missing reasons, misplaced noalloc annotations.
	Problems []Diagnostic
}

var (
	yieldDirective = regexp.MustCompile(`^//yield:(\S+)`)
	allowSyntax    = regexp.MustCompile(`^//yield:allow\(([A-Za-z0-9_-]*)\)(.*)$`)
)

// ParseDirectives scans the //yield: directives of the given files.
// Directive syntax is validated here; rule-name validity and staleness need
// the analyzer set and the findings, so Check handles those.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{Allows: make(map[string]map[int][]*Allow)}
	for _, f := range files {
		fname := fset.Position(f.Package).Filename
		if strings.HasSuffix(fname, "_test.go") {
			continue // invariants target production code; tests are exempt
		}
		noallocDocs := make(map[*ast.Comment]bool)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				if strings.TrimSpace(c.Text) == "//yield:"+DirNoalloc {
					noallocDocs[c] = true
					d.Noalloc = append(d.Noalloc, fn)
				}
			}
		}
		computeDocs := make(map[*ast.Comment]bool)
		if f.Doc != nil {
			for _, c := range f.Doc.List {
				if strings.TrimSpace(c.Text) == "//yield:"+DirCompute {
					computeDocs[c] = true
					d.Compute = true
				}
			}
		}
		codeCols := codeColumns(fset, f)
		for _, group := range f.Comments {
			for _, c := range group.List {
				d.parseComment(fset, fname, c, noallocDocs, computeDocs, codeCols)
			}
		}
	}
	return d
}

// codeColumns maps each line of f to the leftmost column where a
// non-comment node starts — the information that distinguishes a trailing
// directive (code before it on the line) from one standing on a line of
// its own.
func codeColumns(fset *token.FileSet, f *ast.File) map[int]int {
	cols := make(map[int]int)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		}
		pos := fset.Position(n.Pos())
		if cur, ok := cols[pos.Line]; !ok || pos.Column < cur {
			cols[pos.Line] = pos.Column
		}
		return true
	})
	return cols
}

func (d *Directives) parseComment(fset *token.FileSet, fname string, c *ast.Comment, noallocDocs, computeDocs map[*ast.Comment]bool, codeCols map[int]int) {
	text := c.Text
	if !strings.Contains(text, "//yield:") && !strings.Contains(text, "yield:allow") &&
		!strings.Contains(text, "yield:"+DirNoalloc) {
		return
	}
	if strings.HasPrefix(text, "/*") && strings.Contains(text, "yield:") {
		d.Problems = append(d.Problems, Diagnostic{
			Pos:     c.Pos(),
			Message: "yield: directives must use //-comments, not /* */ blocks",
		})
		return
	}
	m := yieldDirective.FindStringSubmatch(text)
	if m == nil {
		return // an ordinary comment that merely mentions the word
	}
	switch {
	case m[1] == DirNoalloc:
		if strings.TrimSpace(text) != "//yield:"+DirNoalloc {
			d.Problems = append(d.Problems, Diagnostic{
				Pos:     c.Pos(),
				Message: "malformed //yield:noalloc directive: no arguments allowed",
			})
			return
		}
		if !noallocDocs[c] {
			d.Problems = append(d.Problems, Diagnostic{
				Pos:     c.Pos(),
				Message: "//yield:noalloc must be part of a function's doc comment",
			})
		}
	case m[1] == DirCompute:
		if strings.TrimSpace(text) != "//yield:"+DirCompute {
			d.Problems = append(d.Problems, Diagnostic{
				Pos:     c.Pos(),
				Message: "malformed //yield:compute directive: no arguments allowed",
			})
			return
		}
		if !computeDocs[c] {
			d.Problems = append(d.Problems, Diagnostic{
				Pos:     c.Pos(),
				Message: "//yield:compute must be part of the package doc comment",
			})
		}
	case strings.HasPrefix(m[1], "allow"):
		am := allowSyntax.FindStringSubmatch(text)
		if am == nil {
			d.Problems = append(d.Problems, Diagnostic{
				Pos:     c.Pos(),
				Message: "malformed //yield:allow directive: want //yield:allow(rule) reason",
			})
			return
		}
		rule, reason := am[1], strings.TrimSpace(am[2])
		a := &Allow{Pos: c.Pos(), Line: fset.Position(c.Pos()).Line, File: fname, Rule: rule, Reason: reason}
		if rule == "" {
			d.Problems = append(d.Problems, Diagnostic{
				Pos:     c.Pos(),
				Message: "//yield:allow needs a rule name: //yield:allow(rule) reason",
			})
			return
		}
		if reason == "" {
			d.Problems = append(d.Problems, Diagnostic{
				Pos:     c.Pos(),
				Message: "//yield:allow(" + rule + ") needs a non-empty reason",
			})
			return
		}
		byLine := d.Allows[fname]
		if byLine == nil {
			byLine = make(map[int][]*Allow)
			d.Allows[fname] = byLine
		}
		// A trailing allow (code starts before it on its line) covers
		// exactly that line; an allow standing on a line of its own covers
		// exactly the next line. Covering one line each keeps adjacent
		// findings from being swallowed by a neighbor's suppression.
		col := fset.Position(c.Pos()).Column
		if codeCol, ok := codeCols[a.Line]; ok && codeCol < col {
			byLine[a.Line] = append(byLine[a.Line], a)
		} else {
			byLine[a.Line+1] = append(byLine[a.Line+1], a)
		}
	default:
		d.Problems = append(d.Problems, Diagnostic{
			Pos:     c.Pos(),
			Message: "unknown yield: directive " + m[1] + " (have allow, compute, noalloc)",
		})
	}
}

// IsNoalloc reports whether fn carries the //yield:noalloc annotation.
func IsNoalloc(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == "//yield:"+DirNoalloc {
			return true
		}
	}
	return false
}

// allowsFor returns the suppressions covering the given file line.
func (d *Directives) allowsFor(file string, line int) []*Allow {
	return d.Allows[file][line]
}
