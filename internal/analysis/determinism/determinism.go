// Package determinism checks that the repo's compute packages stay
// bit-reproducible: Monte Carlo estimates, sweep tables and canonical
// fingerprints must come out identical for identical inputs, across worker
// counts and across processes — that property backs the paper-anchor
// comparisons, the /v2/query ETags and BENCH_BASELINE.json.
//
// In compute packages — those declaring a //yield:compute line in their
// package doc comment (dist, renewal, rowyield, montecarlo, rareevent,
// query, experiments, ...) — the analyzer flags:
//
//   - the global math/rand functions (rand.Float64, rand.Intn, ...): all
//     randomness must flow through an explicit *rand.Rand from
//     internal/rng, so a root seed reproduces every stream;
//   - wall-clock and environment reads (time.Now/Since/Until,
//     os.Getenv/LookupEnv/Environ) in pure evaluation paths;
//   - `range` over a map whose body appends to an outer slice, folds into
//     a float accumulator, or serializes (JSON/fmt writes): map iteration
//     order is randomized per run, so any order-sensitive fold diverges.
//     Appending keys and sorting immediately after the loop — the repo's
//     sorted-keys idiom — is recognized and not flagged.
//
// Integer accumulation over a map is deliberately not flagged: integer
// addition is associative and commutative, so iteration order cannot
// change the sum. Float addition is neither.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/cnfet/yieldlab/internal/analysis"
)

// Analyzer is the determinism invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flag nondeterminism sources (global rand, wall clock, env, order-sensitive map iteration) " +
		"in compute packages",
	Run: run,
}

// Compute packages declare themselves with a //yield:compute line in
// their package doc comment; the analyzer runs only on packages carrying
// the directive. Self-declaration replaced a hardcoded name list that
// silently went stale (it missed rareevent, whose estimates back the
// paper anchors exactly like montecarlo's). The service/persistence
// layer (server, sweepstore) and the sanctioned randomness wrapper (rng)
// simply carry no directive: servers legitimately read clocks and
// environments, and rng exists to own the math/rand construction
// everything else must route through.

// allowedRandFuncs are the math/rand package-level functions that carry no
// hidden global state: constructors internal/rng itself builds on.
var allowedRandFuncs = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}

// impureFuncs lists forbidden package-level functions by package path.
var impureFuncs = map[string]map[string]bool{
	"time": {"Now": true, "Since": true, "Until": true},
	"os":   {"Getenv": true, "LookupEnv": true, "Environ": true},
}

func run(pass *analysis.Pass) error {
	if !analysis.ParseDirectives(pass.Fset, pass.Files).Compute {
		return nil
	}
	for _, file := range pass.NonTestFiles() {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkImpureCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkImpureCall flags selector uses that resolve to forbidden
// package-level functions.
func checkImpureCall(pass *analysis.Pass, sel *ast.SelectorExpr) {
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok {
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Package-level functions only: methods (e.g. (*rand.Rand).Float64)
	// operate on explicit state and are exactly what we want instead.
	if fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	switch path := fn.Pkg().Path(); path {
	case "math/rand", "math/rand/v2":
		if !allowedRandFuncs[fn.Name()] {
			pass.Reportf(sel.Pos(),
				"global %s.%s draws from shared process state; take a *rand.Rand built by internal/rng instead",
				fn.Pkg().Name(), fn.Name())
		}
	default:
		if impureFuncs[path][fn.Name()] {
			pass.Reportf(sel.Pos(),
				"%s.%s in a compute package makes evaluation irreproducible; thread the value in from the caller",
				fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkMapRange flags order-sensitive folds inside `range` over a map.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	if rng.X == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Nested ranges get their own visit from the file-level walk.
			return false
		case *ast.AssignStmt:
			checkRangeAssign(pass, rng, n)
		case *ast.CallExpr:
			checkRangeCall(pass, rng, n)
		}
		return true
	})
}

// checkRangeAssign flags `s = append(s, ...)` to an outer slice (unless a
// sort call follows the loop) and float compound assignment to an outer
// accumulator.
func checkRangeAssign(pass *analysis.Pass, rng *ast.RangeStmt, assign *ast.AssignStmt) {
	switch assign.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range assign.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltin(pass, call.Fun, "append") || i >= len(assign.Lhs) {
				continue
			}
			lhs, ok := assign.Lhs[i].(*ast.Ident)
			if !ok || definedWithin(pass, lhs, rng) {
				continue
			}
			if sortedAfter(pass, rng, lhs.Name) {
				continue // the append-keys-then-sort idiom is deterministic
			}
			pass.Reportf(assign.Pos(),
				"appending to %s in map-iteration order is nondeterministic; collect and sort the keys first",
				lhs.Name)
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := assign.Lhs[0]
		tv, ok := pass.TypesInfo.Types[lhs]
		if !ok {
			return
		}
		basic, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsFloat == 0 {
			return // integer folds are order-independent
		}
		if id, ok := lhs.(*ast.Ident); ok && definedWithin(pass, id, rng) {
			return
		}
		pass.Reportf(assign.Pos(),
			"float accumulation in map-iteration order is nondeterministic; iterate sorted keys instead")
	}
}

// serializers lists call targets that emit bytes in iteration order.
var serializers = map[string]map[string]bool{
	"encoding/json": {"Marshal": true, "MarshalIndent": true},
	"fmt":           {"Fprint": true, "Fprintf": true, "Fprintln": true},
	"io":            {"WriteString": true},
}

// checkRangeCall flags serialization inside the loop body.
func checkRangeCall(pass *analysis.Pass, rng *ast.RangeStmt, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok {
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		// Methods: flag the JSON encoder's Encode.
		if fn.Name() == "Encode" && fn.Pkg().Path() == "encoding/json" {
			pass.Reportf(call.Pos(),
				"encoding JSON in map-iteration order is nondeterministic; iterate sorted keys instead")
		}
		return
	}
	if serializers[fn.Pkg().Path()][fn.Name()] {
		pass.Reportf(call.Pos(),
			"writing output in map-iteration order is nondeterministic; iterate sorted keys instead")
	}
}

// isBuiltin reports whether fun denotes the named builtin.
func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// definedWithin reports whether id's object is declared inside the range
// statement (loop-local state resets every iteration, so folding into it
// is fine).
func definedWithin(pass *analysis.Pass, id *ast.Ident, rng *ast.RangeStmt) bool {
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()
}

// sortedAfter reports whether some statement after rng in its enclosing
// block sorts name: a call to sort.* or slices.Sort* mentioning it.
func sortedAfter(pass *analysis.Pass, rng *ast.RangeStmt, name string) bool {
	block := enclosingBlock(pass, rng)
	if block == nil {
		return false
	}
	after := false
	for _, stmt := range block.List {
		if stmt == ast.Stmt(rng) {
			after = true
			continue
		}
		if !after {
			continue
		}
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
				return true
			}
			for _, arg := range call.Args {
				mentioned := false
				ast.Inspect(arg, func(a ast.Node) bool {
					if id, ok := a.(*ast.Ident); ok && id.Name == name {
						mentioned = true
					}
					return !mentioned
				})
				if mentioned {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// enclosingBlock finds the innermost block statement containing rng.
func enclosingBlock(pass *analysis.Pass, rng *ast.RangeStmt) *ast.BlockStmt {
	for _, file := range pass.Files {
		if rng.Pos() < file.Pos() || rng.Pos() > file.End() {
			continue
		}
		var best *ast.BlockStmt
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if n.Pos() > rng.Pos() || n.End() < rng.End() {
				return false
			}
			if b, ok := n.(*ast.BlockStmt); ok {
				for _, stmt := range b.List {
					if stmt == ast.Stmt(rng) {
						best = b
					}
				}
			}
			return true
		})
		return best
	}
	return nil
}
