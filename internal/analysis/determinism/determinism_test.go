package determinism_test

import (
	"testing"

	"github.com/cnfet/yieldlab/internal/analysis/analysistest"
	"github.com/cnfet/yieldlab/internal/analysis/determinism"
)

func TestComputePackageFindings(t *testing.T) {
	analysistest.Run(t, "rowyield", determinism.Analyzer)
}

func TestNonComputePackageIsExempt(t *testing.T) {
	analysistest.Run(t, "webui", determinism.Analyzer)
}
