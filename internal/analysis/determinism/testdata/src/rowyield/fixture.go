// Package rowyield is a determinism fixture: the //yield:compute
// directive below marks it as a compute package, so nondeterminism
// sources must be flagged.
//
//yield:compute
package rowyield

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"time"
)

// globalRand draws from the shared math/rand state.
func globalRand() float64 {
	seedless := rand.Float64() // want "global rand.Float64 draws from shared process state"
	n := rand.Intn(10)         // want "global rand.Intn"
	return seedless + float64(n)
}

// explicitRand threads a generator explicitly: the sanctioned pattern.
func explicitRand(r *rand.Rand) float64 {
	src := rand.New(rand.NewSource(1)) // constructors are fine
	return r.Float64() + src.Float64()
}

// impure reads ambient process state.
func impure() string {
	t := time.Now()            // want "time.Now in a compute package"
	d := time.Since(t)         // want "time.Since in a compute package"
	env := os.Getenv("CORNER") // want "os.Getenv in a compute package"
	return env + d.String()
}

// mapFolds exercises the order-sensitive map-iteration checks.
func mapFolds(m map[string]float64, w io.Writer) ([]string, float64) {
	var names []string
	for k := range m {
		names = append(names, k) // want "appending to names in map-iteration order"
	}

	var sorted []string
	for k := range m {
		sorted = append(sorted, k) // append-then-sort is the sanctioned idiom
	}
	sort.Strings(sorted)

	total := 0.0
	for _, v := range m {
		total += v // want "float accumulation in map-iteration order"
	}

	count := 0
	for range m {
		count++ // integer folds are order-independent
	}

	for k, v := range m {
		fmt.Fprintf(w, "%s=%g\n", k, v) // want "writing output in map-iteration order"
	}

	enc := json.NewEncoder(w)
	for k := range m {
		_ = enc.Encode(k) // want "encoding JSON in map-iteration order"
	}

	for _, v := range m {
		local := 0.0
		local += v // loop-local accumulator resets every iteration
		_ = local
	}

	return names, total + float64(count)
}
