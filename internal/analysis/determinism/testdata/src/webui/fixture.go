// Package webui is a clean fixture: it carries no //yield:compute
// directive, so clocks, environment reads and map-order writes are all
// legitimate here.
package webui

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"
)

// serve does everything the determinism analyzer hates, outside its scope.
func serve(w io.Writer, m map[string]float64) {
	fmt.Fprintf(w, "t=%v env=%s r=%g\n", time.Now(), os.Getenv("PORT"), rand.Float64())
	total := 0.0
	for k, v := range m {
		total += v
		fmt.Fprintf(w, "%s\n", k)
	}
	_ = total
}
