package analysis_test

import (
	"bytes"
	"testing"

	"github.com/cnfet/yieldlab/internal/analysis"
	"github.com/cnfet/yieldlab/internal/analysis/atomicsafe"
	"github.com/cnfet/yieldlab/internal/analysis/ctxflow"
	"github.com/cnfet/yieldlab/internal/analysis/load"
)

var graphPaths = []string{"leaf", "mid1", "mid2", "top"}

// loadGraphFixture loads the factsgraph diamond (top → {mid1, mid2} → leaf)
// once, sequentially — the loader is not concurrency-safe. The jobs handed
// to ComputeFactsGraph then do no parsing, so the scheduler's interleaving
// is the only variable under test.
func loadGraphFixture(t *testing.T) map[string]*analysis.Target {
	t.Helper()
	loader := load.NewFixtureLoader("testdata/factsgraph/src")
	targets := make(map[string]*analysis.Target, len(graphPaths))
	for _, p := range graphPaths {
		target, err := loader.Load(p)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", p, err)
		}
		targets[p] = target
	}
	return targets
}

// graphJobs returns the fixture's jobs in the given order rotation, so
// repeats present the scheduler with different ready-stack orders.
func graphJobs(targets map[string]*analysis.Target, rotate int) []analysis.FactJob {
	deps := map[string][]string{
		"leaf": nil,
		"mid1": {"leaf"},
		"mid2": {"leaf"},
		"top":  {"mid1", "mid2"},
	}
	jobs := make([]analysis.FactJob, 0, len(graphPaths))
	for i := range graphPaths {
		p := graphPaths[(i+rotate)%len(graphPaths)]
		target := targets[p]
		jobs = append(jobs, analysis.FactJob{
			Path: p,
			Deps: deps[p],
			Load: func() (*analysis.Target, error) { return target, nil },
		})
	}
	return jobs
}

// TestComputeFactsGraphDeterministic hammers the concurrent fact scheduler:
// many repeats, 8 workers, job order rotated per repeat, and the serialized
// per-package facts byte-compared against the first run. Any
// scheduling-order leak into a fact encoding — or a data race on the
// FactSet, under -race — fails here.
func TestComputeFactsGraphDeterministic(t *testing.T) {
	suite := []*analysis.Analyzer{ctxflow.Analyzer, atomicsafe.Analyzer}
	paths := graphPaths
	targets := loadGraphFixture(t)

	baseline := make(map[string][]byte, len(paths))
	for rep := 0; rep < 32; rep++ {
		jobs := graphJobs(targets, rep)
		fs := analysis.NewFactSet()
		if err := analysis.ComputeFactsGraph(jobs, suite, fs, 8); err != nil {
			t.Fatalf("repeat %d: %v", rep, err)
		}
		for _, p := range paths {
			data, err := fs.ExportPackage(p)
			if err != nil {
				t.Fatalf("repeat %d: exporting %s: %v", rep, p, err)
			}
			if rep == 0 {
				if bytes.Equal(data, []byte("{}")) {
					t.Fatalf("fixture %s produced no facts; the determinism check would be vacuous", p)
				}
				baseline[p] = data
				continue
			}
			if !bytes.Equal(data, baseline[p]) {
				t.Fatalf("repeat %d: facts for %s diverged:\n  first: %s\n  now:   %s",
					rep, p, baseline[p], data)
			}
		}
	}
}

// TestComputeFactsGraphFailureCascade pins the scheduler's error contract:
// a failing load skips every transitive dependent but still computes the
// independent side of the diamond.
func TestComputeFactsGraphFailureCascade(t *testing.T) {
	suite := []*analysis.Analyzer{ctxflow.Analyzer, atomicsafe.Analyzer}
	jobs := graphJobs(loadGraphFixture(t), 0)
	for i := range jobs {
		if jobs[i].Path == "mid1" {
			jobs[i].Load = func() (*analysis.Target, error) {
				return nil, errLoad
			}
		}
	}
	fs := analysis.NewFactSet()
	err := analysis.ComputeFactsGraph(jobs, suite, fs, 8)
	if err == nil {
		t.Fatal("want an error from the failed load")
	}
	got := fs.Packages()
	for _, p := range got {
		if p == "mid1" || p == "top" {
			t.Fatalf("facts recorded for %s despite the failed load (have %v)", p, got)
		}
	}
	// leaf and mid2 are unaffected by mid1's failure.
	want := map[string]bool{"leaf": false, "mid2": false}
	for _, p := range got {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Fatalf("facts for %s missing after unrelated failure (have %v)", p, got)
		}
	}
}

type loadError struct{}

func (loadError) Error() string { return "fixture load failed" }

var errLoad = loadError{}
