package analysis

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// This file is the cross-package facts layer: the mechanism by which an
// analyzer run over one package exports a summary (a "fact") that later
// runs over importing packages can consult. It mirrors x/tools' package
// facts in spirit but serializes to canonical JSON instead of gob, because
// the facts ride in two quite different vehicles: the vetx files of the
// `go vet -vettool` protocol (one file per package, written during the
// VetxOnly pre-pass) and an in-process FactSet filled in dependency order
// by the standalone `go list -deps` driver.
//
// Determinism contract: a FactComputer must return a value whose JSON
// encoding is a pure function of the package's source — sorted slices, no
// maps with nondeterministic iteration baked into ordering, no pointers to
// shared mutable state. Encoded facts are compared byte-for-byte by tests
// that hammer the concurrent scheduler, so any scheduling-order leak in a
// fact encoding is itself a bug.

// A FactSet holds the encoded per-package facts of one analysis session,
// keyed by package import path and then analyzer name. It is safe for
// concurrent use: the standalone driver computes facts for independent
// packages in parallel.
type FactSet struct {
	mu    sync.Mutex
	facts map[string]map[string]json.RawMessage
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet {
	return &FactSet{facts: make(map[string]map[string]json.RawMessage)}
}

// set records the encoded fact of one analyzer for one package.
func (s *FactSet) set(pkgPath, analyzer string, fact any) error {
	data, err := json.Marshal(fact)
	if err != nil {
		return fmt.Errorf("encoding %s fact for %s: %w", analyzer, pkgPath, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	byAnalyzer := s.facts[pkgPath]
	if byAnalyzer == nil {
		byAnalyzer = make(map[string]json.RawMessage)
		s.facts[pkgPath] = byAnalyzer
	}
	byAnalyzer[analyzer] = data
	return nil
}

// get decodes the named analyzer's fact for pkgPath into out, reporting
// whether a fact was present.
func (s *FactSet) get(pkgPath, analyzer string, out any) bool {
	s.mu.Lock()
	data, ok := s.facts[pkgPath][analyzer]
	s.mu.Unlock()
	if !ok {
		return false
	}
	return json.Unmarshal(data, out) == nil
}

// ExportPackage serializes one package's facts — the payload a vetx file
// carries. Packages with no facts export an empty object, so an empty (or
// absent) vetx file and "no facts" mean the same thing to the importer.
func (s *FactSet) ExportPackage(pkgPath string) ([]byte, error) {
	s.mu.Lock()
	byAnalyzer := s.facts[pkgPath]
	names := make([]string, 0, len(byAnalyzer))
	for name := range byAnalyzer {
		names = append(names, name)
	}
	sort.Strings(names)
	ordered := make(map[string]json.RawMessage, len(byAnalyzer))
	for _, name := range names {
		ordered[name] = byAnalyzer[name]
	}
	s.mu.Unlock()
	// json.Marshal sorts map keys, so the encoding is canonical regardless
	// of insertion order.
	return json.Marshal(ordered)
}

// ImportPackage merges a serialized package payload (from ExportPackage,
// typically read out of a dependency's vetx file) into the set. Empty data
// is accepted and means "no facts": the vet driver creates empty vetx
// files for packages a vettool declines to fill.
func (s *FactSet) ImportPackage(pkgPath string, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var byAnalyzer map[string]json.RawMessage
	if err := json.Unmarshal(data, &byAnalyzer); err != nil {
		return fmt.Errorf("decoding facts for %s: %w", pkgPath, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dst := s.facts[pkgPath]
	if dst == nil {
		dst = make(map[string]json.RawMessage, len(byAnalyzer))
		s.facts[pkgPath] = dst
	}
	for name, fact := range byAnalyzer {
		dst[name] = fact
	}
	return nil
}

// Packages returns the import paths with at least one recorded fact,
// sorted.
func (s *FactSet) Packages() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	paths := make([]string, 0, len(s.facts))
	for p := range s.facts {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// ComputeFacts runs the fact computers of the given analyzers over one
// package and records the results. It is the pre-pass half of an analysis
// session: callers invoke it on dependencies (in import order) before
// CheckFacts on the packages under review.
func ComputeFacts(target *Target, analyzers []*Analyzer, fs *FactSet) error {
	for _, a := range analyzers {
		if a.FactComputer == nil {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      target.Fset,
			Files:     target.Files,
			Pkg:       target.Pkg,
			TypesInfo: target.Info,
			facts:     fs,
			// Fact computation must not report: findings belong to the
			// checking pass over the package under review.
			Report: func(Diagnostic) {},
		}
		fact, err := a.FactComputer(pass)
		if err != nil {
			return fmt.Errorf("analyzer %s: computing fact for %s: %w", a.Name, target.Pkg.Path(), err)
		}
		if fact == nil {
			continue
		}
		if err := fs.set(target.Pkg.Path(), a.Name, fact); err != nil {
			return err
		}
	}
	return nil
}

// A FactJob names one package in a dependency graph handed to
// ComputeFactsGraph: how to load it, and which import paths must have
// their facts computed first. Deps naming packages outside the job set
// (the standard library, packages already imported into the FactSet) are
// no-ops for scheduling.
type FactJob struct {
	Path string
	Deps []string
	Load func() (*Target, error)
}

// ComputeFactsGraph computes facts for a whole dependency graph with
// bounded concurrency: a job starts once every dep that is itself a job
// has finished, so an importing package always sees its dependencies'
// facts. Jobs whose deps failed are skipped; all errors are returned,
// joined, in path order.
func ComputeFactsGraph(jobs []FactJob, analyzers []*Analyzer, fs *FactSet, workers int) error {
	if workers < 1 {
		workers = 1
	}
	type node struct {
		job        FactJob
		blocked    int
		dependents []*node
	}
	byPath := make(map[string]*node, len(jobs))
	for i := range jobs {
		byPath[jobs[i].Path] = &node{job: jobs[i]}
	}
	var ready []*node
	for _, n := range byPath {
		for _, dep := range n.job.Deps {
			if d, ok := byPath[dep]; ok && d != n {
				d.dependents = append(d.dependents, n)
				n.blocked++
			}
		}
	}
	for _, j := range jobs {
		if n := byPath[j.Path]; n.blocked == 0 {
			ready = append(ready, n)
		}
	}

	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		pending  = len(jobs)
		failures = make(map[string]error)
	)
	// markFailed records n as failed and cascades to dependents that have
	// no other blockers left: dependents of a failed job must not run —
	// their facts would be computed against a hole in the graph. Caller
	// holds mu. Import graphs are acyclic, so the recursion terminates.
	var markFailed func(n *node, err error)
	markFailed = func(n *node, err error) {
		failures[n.job.Path] = err
		pending--
		for _, dep := range n.dependents {
			dep.blocked--
			if dep.blocked == 0 {
				markFailed(dep, fmt.Errorf("dependency %s failed", n.job.Path))
			}
		}
	}
	finish := func(n *node, err error) {
		mu.Lock()
		if err != nil {
			markFailed(n, err)
		} else {
			pending--
			for _, dep := range n.dependents {
				dep.blocked--
				if dep.blocked == 0 {
					ready = append(ready, dep)
				}
			}
		}
		cond.Broadcast()
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for len(ready) == 0 && pending > 0 {
					cond.Wait()
				}
				if len(ready) == 0 {
					mu.Unlock()
					return
				}
				n := ready[len(ready)-1]
				ready = ready[:len(ready)-1]
				mu.Unlock()

				target, err := n.job.Load()
				if err == nil {
					err = ComputeFacts(target, analyzers, fs)
				}
				finish(n, err)
			}
		}()
	}
	wg.Wait()

	if len(failures) == 0 {
		return nil
	}
	paths := make([]string, 0, len(failures))
	for p := range failures {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	errs := make([]error, 0, len(paths))
	for _, p := range paths {
		errs = append(errs, fmt.Errorf("%s: %w", p, failures[p]))
	}
	return errors.Join(errs...)
}
