// Package analysistest runs yieldvet analyzers over golden fixture
// packages, mirroring golang.org/x/tools/go/analysis/analysistest: fixture
// source marks each expected finding with a trailing
//
//	// want "regexp"
//
// comment on the flagged line (several per line allowed, in order), and
// the harness fails the test on any unmatched expectation or unexpected
// diagnostic. Because fixtures run through analysis.CheckFacts — the same
// entry point the yieldvet drivers use — suppression directives, their
// staleness rules and the cross-package facts layer are exercised exactly
// as in production runs.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/cnfet/yieldlab/internal/analysis"
	"github.com/cnfet/yieldlab/internal/analysis/load"
)

// expectation is one // want entry.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+((?:"(?:[^"\\]|\\.)*"\s*)+)$`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads testdata/src/<pkg> relative to the caller's package directory,
// runs the analyzers through analysis.CheckFacts, and diffs the
// diagnostics against the fixture's // want comments. Imports naming
// sibling directories under testdata/src resolve to those fixture
// packages, whose facts are computed first (in dependency order) so
// cross-package analyzers see dependencies exactly as the yieldvet
// drivers present them; // want expectations apply only to the target
// package.
func Run(t *testing.T, pkg string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	root := filepath.Join("testdata", "src")
	dir := filepath.Join(root, pkg)
	loader := load.NewFixtureLoader(root)
	target, err := loader.Load(pkg)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	expects, err := parseExpectations(dir)
	if err != nil {
		t.Fatal(err)
	}

	fs := analysis.NewFactSet()
	for _, dep := range loader.Loaded() {
		if dep == pkg {
			continue // CheckFacts computes the target's own facts
		}
		depTarget, err := loader.Load(dep)
		if err != nil {
			t.Fatalf("loading fixture dependency %s: %v", dep, err)
		}
		if err := analysis.ComputeFacts(depTarget, analyzers, fs); err != nil {
			t.Fatalf("computing facts for fixture dependency %s: %v", dep, err)
		}
	}

	diags, err := analysis.CheckFacts(target, analyzers, fs)
	if err != nil {
		t.Fatalf("checking fixture %s: %v", dir, err)
	}

	for _, d := range diags {
		pos := target.Fset.Position(d.Pos)
		base := filepath.Base(pos.Filename)
		if !claim(expects, base, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic [%s] %s", base, pos.Line, d.Rule, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// claim marks the first unmatched expectation on (file, line) whose regexp
// matches message.
func claim(expects []*expectation, file string, line int, message string) bool {
	for _, e := range expects {
		if e.matched || e.file != file || e.line != line {
			continue
		}
		if e.re.MatchString(message) {
			e.matched = true
			return true
		}
	}
	return false
}

// parseExpectations scans the fixture's raw source for // want comments.
func parseExpectations(dir string) ([]*expectation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(arg[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, arg[1], err)
				}
				out = append(out, &expectation{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	return out, nil
}
