// Package fft provides an iterative radix-2 fast Fourier transform tuned
// for the one job the repository needs it for: linear convolution of long
// non-negative probability vectors inside the renewal sweep engine. It has
// no external dependencies.
//
// The API is plan-based: a Plan precomputes the twiddle factors and the
// bit-reversal permutation for one power-of-two size and is immutable (and
// therefore safe for concurrent use) afterwards. Real-valued inputs go
// through the standard half-size packing trick — an N-point real transform
// costs one N/2-point complex transform plus an O(N) unpack — so convolving
// two real vectors costs two real transforms and one pointwise multiply once
// one operand's spectrum is cached.
//
//yield:compute
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// Plan holds the precomputed tables for transforms of one power-of-two size.
// A Plan is immutable after NewPlan and safe for concurrent use.
type Plan struct {
	n    int          // transform size (power of two, ≥ 2)
	half *Plan        // plan of size n/2 driving the real-input transforms
	w    []complex128 // forward twiddles e^{-2πik/n}, k in [0, n/2)
	rev  []uint32     // bit-reversal permutation
}

// NextPow2 returns the smallest power of two ≥ n (and ≥ 2).
func NextPow2(n int) int {
	if n <= 2 {
		return 2
	}
	return 1 << bits.Len(uint(n-1))
}

// NewPlan builds the tables for size n, which must be a power of two ≥ 2.
func NewPlan(n int) (*Plan, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: size %d is not a power of two ≥ 2", n)
	}
	p := newPlanUnchecked(n)
	if n >= 4 {
		p.half = newPlanUnchecked(n / 2)
	}
	return p, nil
}

func newPlanUnchecked(n int) *Plan {
	p := &Plan{n: n}
	p.w = make([]complex128, n/2)
	for k := range p.w {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.w[k] = complex(c, s)
	}
	shift := 32 - uint(bits.Len(uint(n-1)))
	p.rev = make([]uint32, n)
	for i := range p.rev {
		p.rev[i] = bits.Reverse32(uint32(i)) >> shift
	}
	return p
}

// Size returns the transform size.
func (p *Plan) Size() int { return p.n }

// SpectrumLen returns the length of a half spectrum produced by RealForward:
// n/2 + 1 bins (DC through Nyquist).
func (p *Plan) SpectrumLen() int { return p.n/2 + 1 }

// Forward transforms x in place (length must equal the plan size).
func (p *Plan) Forward(x []complex128) {
	p.transform(x, false)
}

// Inverse applies the inverse transform in place, including the 1/n scale.
func (p *Plan) Inverse(x []complex128) {
	p.transform(x, true)
	scale := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] *= scale
	}
}

// transform is the iterative Cooley-Tukey radix-2 kernel.
func (p *Plan) transform(x []complex128, inv bool) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: input length %d does not match plan size %d", len(x), p.n))
	}
	for i, r := range p.rev {
		if j := int(r); i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	n := p.n
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				w := p.w[tw]
				if inv {
					w = complex(real(w), -imag(w))
				}
				b := x[k+half] * w
				a := x[k]
				x[k] = a + b
				x[k+half] = a - b
				tw += step
			}
		}
	}
}

// RealForward computes the half spectrum (bins 0..n/2) of a real vector.
// src may be shorter than the plan size; it is treated as zero-padded to n.
// dst must have length SpectrumLen(). The remaining bins of the full
// spectrum are the conjugate mirror and are not stored.
func (p *Plan) RealForward(dst []complex128, src []float64) {
	n := p.n
	if len(src) > n {
		panic(fmt.Sprintf("fft: real input length %d exceeds plan size %d", len(src), n))
	}
	if len(dst) != p.SpectrumLen() {
		panic(fmt.Sprintf("fft: spectrum length %d, want %d", len(dst), p.SpectrumLen()))
	}
	if p.half == nil {
		// n == 2: do it directly.
		var a, b float64
		if len(src) > 0 {
			a = src[0]
		}
		if len(src) > 1 {
			b = src[1]
		}
		dst[0] = complex(a+b, 0)
		dst[1] = complex(a-b, 0)
		return
	}
	m := n / 2
	// Pack src[2j], src[2j+1] as real/imag of one m-point complex vector,
	// reusing dst[:m] as the workspace.
	z := dst[:m]
	for j := 0; j < m; j++ {
		var re, im float64
		if 2*j < len(src) {
			re = src[2*j]
		}
		if 2*j+1 < len(src) {
			im = src[2*j+1]
		}
		z[j] = complex(re, im)
	}
	p.half.Forward(z)
	// Unpack: with E/O the transforms of the even/odd subsequences,
	//   E[k] = (Z[k] + conj(Z[m-k]))/2
	//   O[k] = (Z[k] - conj(Z[m-k]))/(2i)
	//   X[k] = E[k] + e^{-2πik/n}·O[k]
	// Walk k from both ends so each Z pair is consumed before being
	// overwritten.
	z0 := z[0]
	dst[m] = complex(real(z0)-imag(z0), 0) // Nyquist bin
	dcRe := real(z0) + imag(z0)
	for k := 1; k <= m/2; k++ {
		zk, zmk := z[k], z[m-k]
		ek := complex(0.5*(real(zk)+real(zmk)), 0.5*(imag(zk)-imag(zmk)))
		ok := complex(0.5*(imag(zk)+imag(zmk)), 0.5*(real(zmk)-real(zk)))
		wk := p.w[k]
		dst[k] = ek + wk*ok
		// X[m-k] = conj(E[k]) + e^{-2πi(m-k)/n}·conj(O[k]); that twiddle is
		// -conj(w_k), so the product is -conj(w_k·O[k])... expanded directly:
		wmk := p.w[m-k]
		dst[m-k] = complex(real(ek), -imag(ek)) + wmk*complex(real(ok), -imag(ok))
	}
	dst[0] = complex(dcRe, 0)
}

// RealInverse reconstructs the real vector whose half spectrum is spec,
// writing the full n samples into dst (length must equal the plan size).
// spec is not modified. work is scratch of length ≥ n/2 that must not alias
// spec; pass nil to allocate internally.
func (p *Plan) RealInverse(dst []float64, spec, work []complex128) {
	n := p.n
	if len(dst) != n {
		panic(fmt.Sprintf("fft: real output length %d, want %d", len(dst), n))
	}
	if len(spec) != p.SpectrumLen() {
		panic(fmt.Sprintf("fft: spectrum length %d, want %d", len(spec), p.SpectrumLen()))
	}
	if p.half == nil {
		a := real(spec[0])
		b := real(spec[1])
		dst[0] = 0.5 * (a + b)
		dst[1] = 0.5 * (a - b)
		return
	}
	m := n / 2
	if work == nil {
		work = make([]complex128, m)
	}
	z := work[:m]
	// Repack the half spectrum into the half-size complex spectrum:
	//   Z[k] = E[k] + i·O[k] with
	//   E[k] = (X[k] + conj(X[m-k]))/2,
	//   O[k] = e^{+2πik/n}·(X[k] - conj(X[m-k]))/2.
	for k := 0; k < m; k++ {
		xk := spec[k]
		xmk := complex(real(spec[m-k]), -imag(spec[m-k]))
		ek := complex(0.5*(real(xk)+real(xmk)), 0.5*(imag(xk)+imag(xmk)))
		d := complex(0.5*(real(xk)-real(xmk)), 0.5*(imag(xk)-imag(xmk)))
		w := p.w[k] // e^{-2πik/n}; conj is e^{+2πik/n}
		ok := complex(real(w), -imag(w)) * d
		z[k] = ek + complex(-imag(ok), real(ok)) // E + i·O
	}
	p.half.Inverse(z)
	for j := 0; j < m; j++ {
		dst[2*j] = real(z[j])
		dst[2*j+1] = imag(z[j])
	}
}

// MulSpectra sets dst[i] = a[i]·b[i]. dst may alias a or b.
func MulSpectra(dst, a, b []complex128) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("fft: spectrum length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// Convolve returns the full linear convolution of a and b
// (length len(a)+len(b)-1) computed by FFT. It is a convenience for tests
// and callers without a hot loop; hot paths should hold a Plan and cache
// spectra instead.
func Convolve(a, b []float64) ([]float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return nil, fmt.Errorf("fft: empty convolution operand (%d, %d)", len(a), len(b))
	}
	outLen := len(a) + len(b) - 1
	p, err := NewPlan(NextPow2(outLen))
	if err != nil {
		return nil, err
	}
	sa := make([]complex128, p.SpectrumLen())
	sb := make([]complex128, p.SpectrumLen())
	p.RealForward(sa, a)
	p.RealForward(sb, b)
	MulSpectra(sa, sa, sb)
	full := make([]float64, p.Size())
	p.RealInverse(full, sa, nil)
	return full[:outLen], nil
}
