package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// naiveDFT is the O(n²) reference transform.
func naiveDFT(x []complex128, inv bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inv {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var acc complex128
		for j := 0; j < n; j++ {
			acc += x[j] * cmplx.Exp(complex(0, sign*2*math.Pi*float64(k*j)/float64(n)))
		}
		if inv {
			acc /= complex(float64(n), 0)
		}
		out[k] = acc
	}
	return out
}

// naiveConvolve is the O(n·m) reference linear convolution.
func naiveConvolve(a, b []float64) []float64 {
	out := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

func maxAbs(xs []float64) float64 {
	m := 0.0
	for _, v := range xs {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{-3: 2, 0: 2, 1: 2, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestNewPlanRejectsNonPow2(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 100} {
		if _, err := NewPlan(n); err == nil {
			t.Errorf("NewPlan(%d) should fail", n)
		}
	}
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 4, 8, 64, 256} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		want := naiveDFT(x, false)
		got := append([]complex128(nil), x...)
		p.Forward(got)
		for k := range got {
			if cmplx.Abs(got[k]-want[k]) > 1e-9*float64(n) {
				t.Fatalf("n=%d bin %d: %v vs %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestForwardInverseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 16, 128, 4096} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		for i := range y {
			if cmplx.Abs(y[i]-x[i]) > 1e-12 {
				t.Fatalf("n=%d sample %d: round trip %v vs %v", n, i, y[i], x[i])
			}
		}
	}
}

func TestRealForwardMatchesComplex(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	// Cover the degenerate n=2 plan, odd input lengths and zero padding.
	for _, tc := range []struct{ n, srcLen int }{
		{2, 2}, {4, 3}, {8, 8}, {64, 37}, {512, 511}, {1024, 1000},
	} {
		p, err := NewPlan(tc.n)
		if err != nil {
			t.Fatal(err)
		}
		src := make([]float64, tc.srcLen)
		for i := range src {
			src[i] = r.NormFloat64()
		}
		full := make([]complex128, tc.n)
		for i := 0; i < tc.srcLen; i++ {
			full[i] = complex(src[i], 0)
		}
		p.Forward(full)
		spec := make([]complex128, p.SpectrumLen())
		p.RealForward(spec, src)
		for k := range spec {
			if cmplx.Abs(spec[k]-full[k]) > 1e-10*float64(tc.n) {
				t.Fatalf("n=%d len=%d bin %d: real %v vs complex %v", tc.n, tc.srcLen, k, spec[k], full[k])
			}
		}
	}
}

func TestRealRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, n := range []int{2, 4, 32, 2048, 16384} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		src := make([]float64, n)
		for i := range src {
			src[i] = r.Float64()
		}
		spec := make([]complex128, p.SpectrumLen())
		p.RealForward(spec, src)
		back := make([]float64, n)
		p.RealInverse(back, spec, nil)
		for i := range back {
			if math.Abs(back[i]-src[i]) > 1e-12 {
				t.Fatalf("n=%d sample %d: %v vs %v", n, i, back[i], src[i])
			}
		}
	}
}

func TestRealInverseScratchMatchesAllocating(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const n = 256
	p, err := NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]float64, n)
	for i := range src {
		src[i] = r.NormFloat64()
	}
	spec := make([]complex128, p.SpectrumLen())
	p.RealForward(spec, src)
	a := make([]float64, n)
	b := make([]float64, n)
	p.RealInverse(a, spec, nil)
	p.RealInverse(b, spec, make([]complex128, n/2))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scratch variant differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property test: FFT convolution matches the naive convolution across random
// supports including odd lengths and near-power-of-2 sizes.
func TestConvolveMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	lengths := []int{1, 2, 3, 5, 17, 63, 64, 65, 127, 128, 129, 500, 1023, 1025}
	for trial := 0; trial < 60; trial++ {
		la := lengths[r.Intn(len(lengths))]
		lb := lengths[r.Intn(len(lengths))]
		a := make([]float64, la)
		b := make([]float64, lb)
		// Probability-vector-like data: non-negative, sums ≈ 1.
		for i := range a {
			a[i] = r.Float64()
		}
		for i := range b {
			b[i] = r.Float64()
		}
		got, err := Convolve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveConvolve(a, b)
		if len(got) != len(want) {
			t.Fatalf("lengths %d/%d: conv length %d want %d", la, lb, len(got), len(want))
		}
		scale := maxAbs(want)
		if scale == 0 {
			scale = 1
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12*scale {
				t.Fatalf("lengths %d/%d: conv[%d] = %v want %v (scale %v)", la, lb, i, got[i], want[i], scale)
			}
		}
	}
}

func TestConvolveRejectsEmpty(t *testing.T) {
	if _, err := Convolve(nil, []float64{1}); err == nil {
		t.Error("empty a should fail")
	}
	if _, err := Convolve([]float64{1}, nil); err == nil {
		t.Error("empty b should fail")
	}
}

func BenchmarkRealForward(b *testing.B) {
	for _, n := range []int{4096, 16384} {
		p, err := NewPlan(n)
		if err != nil {
			b.Fatal(err)
		}
		src := make([]float64, n)
		r := rand.New(rand.NewSource(7))
		for i := range src {
			src[i] = r.Float64()
		}
		spec := make([]complex128, p.SpectrumLen())
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.RealForward(spec, src)
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return "1M+"
	case n >= 1024:
		return itoa(n>>10) + "k"
	default:
		return itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
