// Package jobstore persists the yield server's async-job records so jobs
// survive a process death: each job's spec, fingerprint, state transitions
// and checkpointed partial results live in one file per job, written with
// the same durability idiom as the sweep store — a versioned binary
// envelope (magic + format version, CRC-32 integrity trailer) around a
// canonical JSON body, replaced atomically by rename so a crash mid-write
// can never corrupt an existing record.
//
// A restarted server re-adopts the journal: terminal records (done/failed)
// come back as served history, open records (queued/running) are
// re-executed — resumed from their checkpointed result prefix, which is
// sound because every query result is a pure function of its canonical
// spec. Corrupt record files are quarantined by renaming to .bad, so one
// torn write costs one job, not the journal.
package jobstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cnfet/yieldlab/internal/fault"
)

// magic identifies a job-record file; the trailing byte is the format
// version. Decoders reject any other version outright.
var magic = [8]byte{'C', 'N', 'F', 'J', 'O', 'B', 0, 1}

const (
	// fileExt names record files; LoadAll only considers this extension.
	fileExt = ".job"
	// badExt suffixes quarantined files; ".job.bad" no longer matches
	// fileExt, so a quarantined record is never re-read.
	badExt = ".bad"
	// maxFileSize bounds how much LoadAll reads per record.
	maxFileSize = 1 << 30
)

// Record is the durable form of one job. States and kinds mirror the
// server's job engine; Spec and Results carry opaque JSON owned by the
// engine so the journal does not import the query layer.
type Record struct {
	// ID is the job's stable identity ("job-17"); it names the file.
	ID string `json:"id"`
	// Kind distinguishes query sweeps from experiment batches.
	Kind string `json:"kind"`
	// State is the last journaled lifecycle state
	// (queued/running/done/failed).
	State string `json:"state"`
	// Error carries a failed job's message.
	Error string `json:"error,omitempty"`
	// Experiments lists an experiments job's artifact names; Workers its
	// requested parallelism.
	Experiments []string `json:"experiments,omitempty"`
	Workers     int      `json:"workers,omitempty"`
	// Spec is a query job's canonical spec (JSON), Fingerprint its stable
	// qs1- identity.
	Spec        json.RawMessage `json:"spec,omitempty"`
	Fingerprint string          `json:"fingerprint,omitempty"`
	// Results holds the checkpointed result prefix of a query job (a JSON
	// array in expansion order) or a finished experiments job's artifacts.
	Results json.RawMessage `json:"results,omitempty"`
	// Done and Total report sweep progress at the last checkpoint.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Lifecycle timestamps (zero when the transition has not happened).
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
}

// Open returns a journal rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("jobstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Store is a directory of job records. All methods are safe for concurrent
// use; per-record writes serialize on one mutex (records are small, and
// one writer per job is the common case anyway).
type Store struct {
	dir string

	mu          sync.Mutex // serializes writers
	puts        atomic.Uint64
	loads       atomic.Uint64
	quarantined atomic.Uint64
	putErrs     atomic.Uint64
}

// Dir returns the journal's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats reports the journal's lifetime traffic.
type Stats struct {
	// Puts counts records written, Loads records decoded successfully,
	// Quarantined corrupt files renamed aside, PutErrors failed writes
	// (the job still ran; only durability degraded).
	Puts, Loads, Quarantined, PutErrors uint64
}

// Stats returns the journal's traffic counters.
func (s *Store) Stats() Stats {
	return Stats{
		Puts:        s.puts.Load(),
		Loads:       s.loads.Load(),
		Quarantined: s.quarantined.Load(),
		PutErrors:   s.putErrs.Load(),
	}
}

// Put journals one record, atomically replacing the previous version of
// the same job. The write is all-or-nothing: a crash between temp write
// and rename leaves the old record intact.
func (s *Store) Put(rec Record) error {
	if rec.ID == "" {
		return errors.New("jobstore: record without ID")
	}
	if strings.ContainsAny(rec.ID, "/\\") {
		return fmt.Errorf("jobstore: ID %q is not filesystem-safe", rec.ID)
	}
	if err := s.put(rec); err != nil {
		s.putErrs.Add(1)
		return err
	}
	s.puts.Add(1)
	return nil
}

func (s *Store) put(rec Record) error {
	if err := fault.Inject(fault.SiteJournalPut); err != nil {
		return err
	}
	body, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	out := make([]byte, 0, len(magic)+len(body)+4)
	out = append(out, magic[:]...)
	out = append(out, body...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))

	// The temp file needs no lock: CreateTemp names are unique per call.
	tmp, err := os.CreateTemp(s.dir, "tmp-*"+fileExt+".partial")
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if _, err := tmp.Write(out); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobstore: %w", err)
	}
	path := filepath.Join(s.dir, rec.ID+fileExt)
	s.mu.Lock()
	err = os.Rename(tmp.Name(), path) //yield:allow(atomicsafe) mu exists to order this publish against Delete for the same ID; the critical section is this one file op
	s.mu.Unlock()
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobstore: %w", err)
	}
	return nil
}

// Delete removes one job's record (eviction of finished history). A
// missing file is not an error.
func (s *Store) Delete(id string) error {
	if id == "" || strings.ContainsAny(id, "/\\") {
		return fmt.Errorf("jobstore: bad ID %q", id)
	}
	s.mu.Lock()
	err := os.Remove(filepath.Join(s.dir, id+fileExt)) //yield:allow(atomicsafe) paired with put's rename: removal and publish of one ID must serialize
	s.mu.Unlock()
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("jobstore: %w", err)
	}
	return nil
}

// LoadAll decodes every intact record, sorted by ID for deterministic
// adoption order. Files failing the integrity checks are quarantined by
// renaming to .bad (counted in Stats().Quarantined): a torn record must
// not block a server start, and leaving it in place would re-reject it on
// every restart forever. Transient read failures skip the file without
// quarantining it. Only directory-level I/O failures return an error.
func (s *Store) LoadAll() ([]Record, error) {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	var out []Record
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), fileExt) {
			continue
		}
		path := filepath.Join(s.dir, de.Name())
		rec, err := s.loadFile(path)
		if err != nil {
			if isIntegrityError(err) {
				s.quarantine(path)
			}
			continue
		}
		s.loads.Add(1)
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// integrityError marks a decode failure (vs a transient read failure):
// only integrity failures quarantine the file.
type integrityError struct{ err error }

func (e integrityError) Error() string { return e.err.Error() }
func (e integrityError) Unwrap() error { return e.err }

func isIntegrityError(err error) bool {
	var ie integrityError
	return errors.As(err, &ie)
}

// quarantine renames a corrupt record aside so it is never re-read.
func (s *Store) quarantine(path string) {
	if os.Rename(path, path+badExt) == nil {
		s.quarantined.Add(1)
	}
}

// loadFile reads and verifies one record file.
func (s *Store) loadFile(path string) (Record, error) {
	if err := fault.Inject(fault.SiteStoreLoad); err != nil {
		return Record{}, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return Record{}, err
	}
	if fi.Size() > maxFileSize {
		return Record{}, integrityError{fmt.Errorf("jobstore: %s exceeds size bound", path)}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return Record{}, err
	}
	rec, err := decode(data)
	if err != nil {
		return Record{}, integrityError{fmt.Errorf("jobstore: %s: %w", path, err)}
	}
	return rec, nil
}

// decode parses and verifies one encoded record:
//
//	magic+version (8) | JSON body | crc32(body) (4, little-endian)
func decode(data []byte) (Record, error) {
	if len(data) < len(magic)+4 {
		return Record{}, errors.New("truncated record")
	}
	if [8]byte(data[:8]) != magic {
		return Record{}, errors.New("bad magic or unsupported version")
	}
	body := data[8 : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return Record{}, errors.New("checksum mismatch")
	}
	var rec Record
	if err := json.Unmarshal(body, &rec); err != nil {
		return Record{}, err
	}
	if rec.ID == "" {
		return Record{}, errors.New("record without ID")
	}
	return rec, nil
}
