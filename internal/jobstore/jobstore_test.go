package jobstore

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/cnfet/yieldlab/internal/fault"
)

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestPutLoadRoundTrip(t *testing.T) {
	s := open(t)
	rec := Record{
		ID:          "job-2",
		Kind:        "query",
		State:       "running",
		Spec:        json.RawMessage(`{"kind":"pf","width_nm":155}`),
		Fingerprint: "qs1-abc",
		Results:     json.RawMessage(`[{"pf":1e-9}]`),
		Done:        1,
		Total:       4,
		Created:     time.Date(2026, 8, 8, 1, 2, 3, 0, time.UTC),
		Started:     time.Date(2026, 8, 8, 1, 2, 4, 0, time.UTC),
	}
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	// A second record, and an update of the first (atomic replace).
	if err := s.Put(Record{ID: "job-1", Kind: "experiments", State: "done",
		Experiments: []string{"table1"}, Created: rec.Created}); err != nil {
		t.Fatal(err)
	}
	rec.State = "done"
	rec.Done, rec.Results = 4, json.RawMessage(`[{"pf":1e-9},{},{},{}]`)
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}

	got, err := s.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "job-1" || got[1].ID != "job-2" {
		t.Fatalf("LoadAll = %+v, want job-1, job-2 in ID order", got)
	}
	if got[1].State != "done" || got[1].Done != 4 || string(got[1].Results) != string(rec.Results) {
		t.Fatalf("updated record = %+v", got[1])
	}
	if !got[1].Started.Equal(rec.Started) || !got[1].Finished.IsZero() {
		t.Fatalf("timestamps = %+v", got[1])
	}
	if st := s.Stats(); st.Puts != 3 || st.Loads != 2 || st.Quarantined != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutValidation(t *testing.T) {
	s := open(t)
	if err := s.Put(Record{}); err == nil {
		t.Fatal("record without ID accepted")
	}
	if err := s.Put(Record{ID: "../escape"}); err == nil {
		t.Fatal("path-traversing ID accepted")
	}
	if err := s.Delete("a/b"); err == nil {
		t.Fatal("path-traversing Delete accepted")
	}
}

func TestDelete(t *testing.T) {
	s := open(t)
	if err := s.Put(Record{ID: "job-1", State: "done", Created: time.Now()}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("job-1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("job-1"); err != nil {
		t.Fatalf("deleting a missing record: %v", err)
	}
	got, err := s.LoadAll()
	if err != nil || len(got) != 0 {
		t.Fatalf("LoadAll after delete = %v, %v", got, err)
	}
}

func TestCorruptRecordQuarantined(t *testing.T) {
	s := open(t)
	if err := s.Put(Record{ID: "job-1", State: "queued", Created: time.Now()}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored bytes (flip one body byte → CRC mismatch), and
	// drop in a truncated impostor.
	path := filepath.Join(s.Dir(), "job-1"+fileExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.Dir(), "job-2"+fileExt), []byte("short"), 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := s.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("LoadAll decoded corrupt records: %+v", got)
	}
	if st := s.Stats(); st.Quarantined != 2 {
		t.Fatalf("quarantined = %d, want 2", st.Quarantined)
	}
	// Both files were renamed aside and are never re-read.
	for _, id := range []string{"job-1", "job-2"} {
		if _, err := os.Stat(filepath.Join(s.Dir(), id+fileExt)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s still in place: %v", id, err)
		}
		if _, err := os.Stat(filepath.Join(s.Dir(), id+fileExt+badExt)); err != nil {
			t.Fatalf("%s not quarantined: %v", id, err)
		}
	}
	if got, err := s.LoadAll(); err != nil || len(got) != 0 {
		t.Fatalf("second LoadAll = %v, %v", got, err)
	}
	if st := s.Stats(); st.Quarantined != 2 {
		t.Fatalf("quarantined grew on re-load: %+v", st)
	}
}

func TestInjectedPutFailureCounts(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	s := open(t)
	if err := fault.Enable(fault.SiteJournalPut, "error(journal disk)@nth=1"); err != nil {
		t.Fatal(err)
	}
	err := s.Put(Record{ID: "job-1", State: "queued", Created: time.Now()})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	// Second attempt (failpoint fired once) succeeds.
	if err := s.Put(Record{ID: "job-1", State: "queued", Created: time.Now()}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.PutErrors != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInjectedLoadFailureSkipsWithoutQuarantine(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	s := open(t)
	if err := s.Put(Record{ID: "job-1", State: "done", Created: time.Now()}); err != nil {
		t.Fatal(err)
	}
	if err := fault.Enable(fault.SiteStoreLoad, "error(read)@nth=1"); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadAll()
	if err != nil || len(got) != 0 {
		t.Fatalf("LoadAll under injected read error = %v, %v", got, err)
	}
	if st := s.Stats(); st.Quarantined != 0 {
		t.Fatalf("transient read failure quarantined the record: %+v", st)
	}
	// The fault has passed; the intact record is still there.
	got, err = s.LoadAll()
	if err != nil || len(got) != 1 {
		t.Fatalf("LoadAll after fault = %v, %v", got, err)
	}
}

func TestPartialTempFilesIgnored(t *testing.T) {
	s := open(t)
	if err := os.WriteFile(filepath.Join(s.Dir(), "tmp-123"+fileExt+".partial"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadAll()
	if err != nil || len(got) != 0 {
		t.Fatalf("LoadAll = %v, %v", got, err)
	}
	if st := s.Stats(); st.Quarantined != 0 {
		t.Fatalf("partial file quarantined: %+v", st)
	}
}

func TestDecodeRejectsForeignMagic(t *testing.T) {
	if _, err := decode([]byte("NOTMAGIC-body-crc32")); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("err = %v", err)
	}
}
