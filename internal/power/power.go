// Package power quantifies the cost of the Wmin upsizing strategy: the
// paper measures it as the percentage increase of total gate capacitance
// (a proxy for both dynamic and static power, Section 2.2), and sweeps it
// across technology nodes under the rule that transistor widths scale with
// the node while the inter-CNT pitch stays at 4 nm (Figs. 2.2b and 3.3).
//
//yield:compute
package power

import (
	"errors"
	"fmt"

	"github.com/cnfet/yieldlab/internal/tech"
	"github.com/cnfet/yieldlab/internal/widthdist"
)

// CapModel converts transistor width to gate capacitance. The penalty ratio
// is insensitive to the per-width constant but the fringe term matters: with
// fringe capacitance, upsizing hurts slightly less in relative terms.
type CapModel struct {
	// AttoFaradPerNM is the width-proportional gate capacitance (aF/nm of
	// width). ~0.94 aF/nm reproduces ~1 fF/µm gate loading at 45 nm-class
	// gate stacks.
	AttoFaradPerNM float64
	// FringeAttoFarad is the width-independent per-transistor term.
	FringeAttoFarad float64
}

// DefaultCapModel returns the gate-capacitance model used by the
// experiments. The paper reports pure percentages, equivalent to a zero
// fringe term, so the default keeps fringe at zero; the fringe knob exists
// for sensitivity studies.
func DefaultCapModel() CapModel {
	return CapModel{AttoFaradPerNM: 0.94, FringeAttoFarad: 0}
}

// Validate checks the model.
func (c CapModel) Validate() error {
	if !(c.AttoFaradPerNM > 0) {
		return fmt.Errorf("power: capacitance slope %g must be positive", c.AttoFaradPerNM)
	}
	if c.FringeAttoFarad < 0 {
		return fmt.Errorf("power: fringe capacitance %g must be ≥ 0", c.FringeAttoFarad)
	}
	return nil
}

// GateCap returns the gate capacitance of one transistor of width w (nm),
// in aF.
func (c CapModel) GateCap(w float64) float64 {
	return c.AttoFaradPerNM*w + c.FringeAttoFarad
}

// MeanGateCap returns the mean per-transistor gate capacitance over a width
// distribution with every device upsized to at least wt (wt ≤ 0 disables
// upsizing).
func (c CapModel) MeanGateCap(d *widthdist.Distribution, wt float64) (float64, error) {
	if d == nil {
		return 0, errors.New("power: nil width distribution")
	}
	if err := c.Validate(); err != nil {
		return 0, err
	}
	base := d.Mean()
	if wt > 0 {
		base = d.UpsizedMean(wt)
	}
	return c.AttoFaradPerNM*base + c.FringeAttoFarad, nil
}

// UpsizePenalty returns the fractional increase of total gate capacitance
// caused by upsizing every transistor below wt to wt — the paper's "penalty
// (%)" metric (Fig. 2.2b), as a fraction (0.12 = 12 %).
func (c CapModel) UpsizePenalty(d *widthdist.Distribution, wt float64) (float64, error) {
	before, err := c.MeanGateCap(d, 0)
	if err != nil {
		return 0, err
	}
	after, err := c.MeanGateCap(d, wt)
	if err != nil {
		return 0, err
	}
	return after/before - 1, nil
}

// NodePenalty is one bar of the scaling charts.
type NodePenalty struct {
	Node tech.Node
	// Penalty is the fractional gate-capacitance increase.
	Penalty float64
}

// ScalingSweep computes the upsizing penalty at each node: the 45 nm-
// reference width distribution scales linearly with the node while the
// threshold wt (set by the CNT pitch physics) does not scale. This is the
// mechanism behind the explosive growth of the penalty in Fig. 2.2b.
func (c CapModel) ScalingSweep(d45 *widthdist.Distribution, wt float64, nodes []tech.Node) ([]NodePenalty, error) {
	if d45 == nil {
		return nil, errors.New("power: nil width distribution")
	}
	if !(wt > 0) {
		return nil, fmt.Errorf("power: threshold %g must be positive", wt)
	}
	out := make([]NodePenalty, 0, len(nodes))
	for _, n := range nodes {
		scaled, err := d45.Scale(n)
		if err != nil {
			return nil, fmt.Errorf("power: scaling to %s: %w", n.Name, err)
		}
		p, err := c.UpsizePenalty(scaled, wt)
		if err != nil {
			return nil, err
		}
		out = append(out, NodePenalty{Node: n, Penalty: p})
	}
	return out, nil
}
