package power

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/cnfet/yieldlab/internal/tech"
	"github.com/cnfet/yieldlab/internal/widthdist"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCapModelValidate(t *testing.T) {
	if err := DefaultCapModel().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (CapModel{AttoFaradPerNM: 0}).Validate(); err == nil {
		t.Error("zero slope")
	}
	if err := (CapModel{AttoFaradPerNM: 1, FringeAttoFarad: -1}).Validate(); err == nil {
		t.Error("negative fringe")
	}
}

func TestGateCapLinear(t *testing.T) {
	c := CapModel{AttoFaradPerNM: 2, FringeAttoFarad: 5}
	if got := c.GateCap(10); !almost(got, 25, 1e-12) {
		t.Fatalf("GateCap: %v", got)
	}
}

func TestUpsizePenaltyZeroFringe(t *testing.T) {
	// With zero fringe, penalty equals the width-mean ratio exactly.
	d, _ := widthdist.New([]float64{10, 30}, []float64{0.5, 0.5})
	c := DefaultCapModel()
	p, err := c.UpsizePenalty(d, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Upsized mean = (20+30)/2 = 25 vs 20 → 25%.
	if !almost(p, 0.25, 1e-12) {
		t.Fatalf("penalty: %v", p)
	}
	// Threshold below support: no penalty.
	p, _ = c.UpsizePenalty(d, 5)
	if p != 0 {
		t.Fatalf("no-op penalty: %v", p)
	}
}

func TestFringeSoftensPenalty(t *testing.T) {
	d, _ := widthdist.New([]float64{10, 30}, []float64{0.5, 0.5})
	noFringe := CapModel{AttoFaradPerNM: 1}
	fringe := CapModel{AttoFaradPerNM: 1, FringeAttoFarad: 20}
	p0, _ := noFringe.UpsizePenalty(d, 20)
	p1, _ := fringe.UpsizePenalty(d, 20)
	if p1 >= p0 {
		t.Fatalf("fringe should soften relative penalty: %v vs %v", p1, p0)
	}
}

func TestErrors(t *testing.T) {
	c := DefaultCapModel()
	if _, err := c.MeanGateCap(nil, 0); err == nil {
		t.Error("nil distribution")
	}
	if _, err := c.ScalingSweep(nil, 100, tech.PaperNodes()); err == nil {
		t.Error("nil distribution in sweep")
	}
	d := widthdist.OpenRISC45()
	if _, err := c.ScalingSweep(d, 0, tech.PaperNodes()); err == nil {
		t.Error("zero threshold")
	}
	bad := CapModel{AttoFaradPerNM: -1}
	if _, err := bad.UpsizePenalty(d, 100); err == nil {
		t.Error("invalid model")
	}
}

// The Fig. 2.2b regression: penalty explodes from ≈11% at 45 nm to ≈105% at
// 16 nm for the unoptimized threshold (155 nm).
func TestScalingSweepPaperShape(t *testing.T) {
	c := DefaultCapModel()
	sweep, err := c.ScalingSweep(widthdist.OpenRISC45(), 155, tech.PaperNodes())
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 4 {
		t.Fatalf("sweep length: %d", len(sweep))
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i].Penalty <= sweep[i-1].Penalty {
			t.Fatalf("penalty must grow as nodes shrink: %+v", sweep)
		}
	}
	if p := sweep[0].Penalty; p < 0.08 || p > 0.15 {
		t.Errorf("45 nm penalty %v, want ≈ 0.11", p)
	}
	if p := sweep[3].Penalty; p < 0.90 || p > 1.25 {
		t.Errorf("16 nm penalty %v, want ≈ 1.05", p)
	}
}

// The Fig. 3.3 regression: the optimized threshold nearly eliminates the
// 45 nm penalty and at least halves it at every node.
func TestOptimizedPenaltyShape(t *testing.T) {
	c := DefaultCapModel()
	d := widthdist.OpenRISC45()
	nodes := tech.PaperNodes()
	before, err := c.ScalingSweep(d, 155, nodes)
	if err != nil {
		t.Fatal(err)
	}
	after, err := c.ScalingSweep(d, 109, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if after[0].Penalty > 0.05 {
		t.Errorf("45 nm optimized penalty %v, want ≈ eliminated (<5%%)", after[0].Penalty)
	}
	for i := range nodes {
		if after[i].Penalty > 0.62*before[i].Penalty {
			t.Errorf("%s: optimized %v vs %v should be well below",
				nodes[i].Name, after[i].Penalty, before[i].Penalty)
		}
	}
}

// Property: penalty is non-negative, and monotone non-decreasing in wt.
func TestQuickPenaltyMonotone(t *testing.T) {
	c := DefaultCapModel()
	d := widthdist.OpenRISC45()
	f := func(raw uint16) bool {
		wt := 1 + float64(raw%400)
		p1, e1 := c.UpsizePenalty(d, wt)
		p2, e2 := c.UpsizePenalty(d, wt+13)
		return e1 == nil && e2 == nil && p1 >= -1e-12 && p2 >= p1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
