package widthdist

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/cnfet/yieldlab/internal/rng"
	"github.com/cnfet/yieldlab/internal/tech"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("empty")
	}
	if _, err := New([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch")
	}
	if _, err := New([]float64{-1, 2}, []float64{1, 1}); err == nil {
		t.Error("negative width")
	}
	if _, err := New([]float64{2, 1}, []float64{1, 1}); err == nil {
		t.Error("non-increasing widths")
	}
	if _, err := New([]float64{1, 2}, []float64{1, -1}); err == nil {
		t.Error("negative prob")
	}
	if _, err := New([]float64{1, 2}, []float64{0, 0}); err == nil {
		t.Error("zero mass")
	}
	d, err := New([]float64{10, 20}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(d.Probs()[0], 0.75, 1e-15) {
		t.Fatal("normalization")
	}
}

// Frozen-distribution regressions for the paper's Fig. 2.2a.
func TestOpenRISC45PaperShape(t *testing.T) {
	d := OpenRISC45()
	// Two left bins hold exactly 33%.
	if got := d.ShareBelow(120); !almost(got, 0.33, 1e-12) {
		t.Fatalf("share below 120 nm = %v, want 0.33", got)
	}
	// Wmin=155 upsizes exactly those transistors (empty [120,160) bin).
	if got := d.ShareBelow(155); !almost(got, 0.33, 1e-12) {
		t.Fatalf("share below 155 nm = %v, want 0.33", got)
	}
	// Mean calibrated for the Fig. 2.2b scaling band.
	if m := d.Mean(); m < 200 || m > 220 {
		t.Fatalf("mean = %v, want ≈ 211", m)
	}
	if d.MinWidth() != 60 || d.MaxWidth() != 420 {
		t.Fatalf("support [%v, %v]", d.MinWidth(), d.MaxWidth())
	}
}

// The headline penalty numbers derived from the frozen distribution.
func TestOpenRISC45PenaltyBand(t *testing.T) {
	d := OpenRISC45()
	penalty := func(dd *Distribution, wt float64) float64 {
		return dd.UpsizedMean(wt)/dd.Mean() - 1
	}
	p45 := penalty(d, 155)
	if p45 < 0.08 || p45 > 0.15 {
		t.Fatalf("45 nm penalty at Wt=155: %v, want ≈ 0.11", p45)
	}
	n16, err := tech.ByName("16nm")
	if err != nil {
		t.Fatal(err)
	}
	d16, err := d.Scale(n16)
	if err != nil {
		t.Fatal(err)
	}
	p16 := penalty(d16, 155)
	if p16 < 0.9 || p16 > 1.25 {
		t.Fatalf("16 nm penalty at Wt=155: %v, want ≈ 1.05", p16)
	}
	if p16 < 5*p45 {
		t.Fatalf("scaling should blow the penalty up: %v vs %v", p16, p45)
	}
}

func TestMeanAndUpsizedMean(t *testing.T) {
	d, _ := New([]float64{10, 30}, []float64{0.5, 0.5})
	if !almost(d.Mean(), 20, 1e-12) {
		t.Fatal("mean")
	}
	if !almost(d.UpsizedMean(5), 20, 1e-12) {
		t.Fatal("no-op upsize")
	}
	if !almost(d.UpsizedMean(30), 30, 1e-12) {
		t.Fatal("full upsize")
	}
	if !almost(d.UpsizedMean(20), 25, 1e-12) {
		t.Fatal("partial upsize")
	}
}

func TestShareBelowBoundaries(t *testing.T) {
	d, _ := New([]float64{10, 20, 30}, []float64{1, 1, 2})
	if d.ShareBelow(10) != 0 {
		t.Fatal("strictly below at min")
	}
	if !almost(d.ShareBelow(20.0001), 0.5, 1e-12) {
		t.Fatal("mid share")
	}
	if !almost(d.ShareBelow(1000), 1, 1e-12) {
		t.Fatal("all below")
	}
}

func TestScale(t *testing.T) {
	d := OpenRISC45()
	n32, err := tech.ByName("32nm")
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.Scale(n32)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s.Mean(), d.Mean()*32.0/45, 1e-9) {
		t.Fatalf("scaled mean: %v", s.Mean())
	}
	if !almost(s.MinWidth(), 60*32.0/45, 1e-9) {
		t.Fatalf("scaled min: %v", s.MinWidth())
	}
	if _, err := d.Scale(tech.Node{Name: "bad"}); err == nil {
		t.Fatal("invalid node should error")
	}
}

func TestSampleFrequencies(t *testing.T) {
	d, _ := New([]float64{10, 20, 30}, []float64{0.2, 0.3, 0.5})
	r := rng.New(17)
	counts := map[float64]int{}
	const n = 200_000
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	for i, w := range d.Widths() {
		got := float64(counts[w]) / n
		if !almost(got, d.Probs()[i], 0.005) {
			t.Errorf("freq(%v) = %v want %v", w, got, d.Probs()[i])
		}
	}
}

func TestHistogramRendering(t *testing.T) {
	d := OpenRISC45()
	h, err := d.Histogram(40)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(h.Total(), 1, 1e-12) {
		t.Fatalf("total: %v", h.Total())
	}
	// First bin [40,80) holds 13%, second [80,120) 20%, third [120,160) 0.
	sh := h.Shares()
	if !almost(sh[0], 0.13, 1e-12) || !almost(sh[1], 0.20, 1e-12) || sh[2] != 0 {
		t.Fatalf("bin shares: %v", sh[:4])
	}
	if _, err := d.Histogram(0); err == nil {
		t.Fatal("zero bin width")
	}
}

// Property: UpsizedMean is non-decreasing in the threshold and always ≥ the
// raw mean; ShareBelow is in [0,1].
func TestQuickUpsizeMonotone(t *testing.T) {
	d := OpenRISC45()
	f := func(raw uint16) bool {
		wt := float64(raw%500) + 1
		um1 := d.UpsizedMean(wt)
		um2 := d.UpsizedMean(wt + 25)
		sb := d.ShareBelow(wt)
		return um1 >= d.Mean()-1e-12 && um2 >= um1-1e-12 && sb >= 0 && sb <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
