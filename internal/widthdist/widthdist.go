// Package widthdist models the transistor-width distribution of a
// synthesized design — Fig. 2.2a of the paper: the widths of all CNFETs in
// an OpenRISC core mapped to the (CNFET-modified) Nangate 45 nm Open Cell
// Library. The distribution is the workload for every chip-level result:
// the Wmin optimization (which fraction of devices sits below a threshold),
// the upsizing-penalty model (total width added), and the scaling analysis
// (widths shrink with the node while the CNT pitch does not).
//
//yield:compute
package widthdist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/cnfet/yieldlab/internal/numeric"
	"github.com/cnfet/yieldlab/internal/stat"
	"github.com/cnfet/yieldlab/internal/tech"
)

// Distribution is a discrete transistor-width distribution: width w[i] (nm)
// occurs with probability p[i]. Widths are strictly increasing.
type Distribution struct {
	widths []float64
	probs  []float64
}

// New validates and builds a Distribution; widths must be strictly
// increasing and positive, probabilities non-negative with positive total
// (they are normalized).
func New(widths, probs []float64) (*Distribution, error) {
	if len(widths) == 0 || len(widths) != len(probs) {
		return nil, errors.New("widthdist: widths and probs must be non-empty and equal length")
	}
	var total numeric.Kahan
	for i := range widths {
		if !(widths[i] > 0) {
			return nil, fmt.Errorf("widthdist: width %d = %g must be positive", i, widths[i])
		}
		if i > 0 && widths[i] <= widths[i-1] {
			return nil, fmt.Errorf("widthdist: widths not strictly increasing at %d", i)
		}
		if probs[i] < 0 || math.IsNaN(probs[i]) {
			return nil, fmt.Errorf("widthdist: probability %d = %g invalid", i, probs[i])
		}
		total.Add(probs[i])
	}
	s := total.Sum()
	if !(s > 0) {
		return nil, errors.New("widthdist: zero total probability")
	}
	ws := make([]float64, len(widths))
	ps := make([]float64, len(probs))
	copy(ws, widths)
	for i, p := range probs {
		ps[i] = p / s
	}
	return &Distribution{widths: ws, probs: ps}, nil
}

// OpenRISC45 returns the frozen width distribution of the paper's case
// study: an OpenRISC core (no caches) synthesized onto the CNFET-modified
// Nangate 45 nm library, reported in Fig. 2.2a as a 40 nm-bin histogram.
//
// Shape constraints encoded here (see EXPERIMENTS.md):
//   - the two left-most bins ([40,80) and [80,120) nm) hold 13 % + 20 % =
//     33 % of all transistors — the paper's Mmin estimate;
//   - the [120,160) bin is empty, reflecting the discrete drive-strength
//     jump of a standard-cell library; this is what makes the paper's
//     consistency check work (Wmin ≈ 155 nm upsizes exactly the two left
//     bins and nothing else);
//   - the overall mean (≈ 211 nm) is calibrated so the upsizing penalty
//     lands in the published band at both ends of the scaling sweep of
//     Fig. 2.2b (≈ 11 % at 45 nm, ≈ 105–110 % at 16 nm).
func OpenRISC45() *Distribution {
	d, err := New(
		[]float64{60, 100, 180, 220, 260, 300, 340, 380, 420},
		[]float64{13, 20, 15, 12, 11, 10, 8, 6, 5},
	)
	if err != nil {
		panic("widthdist: frozen OpenRISC45 distribution invalid: " + err.Error())
	}
	return d
}

// Widths returns a copy of the support.
func (d *Distribution) Widths() []float64 {
	out := make([]float64, len(d.widths))
	copy(out, d.widths)
	return out
}

// Probs returns a copy of the probabilities.
func (d *Distribution) Probs() []float64 {
	out := make([]float64, len(d.probs))
	copy(out, d.probs)
	return out
}

// Mean returns the mean transistor width.
func (d *Distribution) Mean() float64 {
	var acc numeric.Kahan
	for i := range d.widths {
		acc.Add(d.widths[i] * d.probs[i])
	}
	return acc.Sum()
}

// MinWidth returns the smallest width in the support.
func (d *Distribution) MinWidth() float64 { return d.widths[0] }

// MaxWidth returns the largest width in the support.
func (d *Distribution) MaxWidth() float64 { return d.widths[len(d.widths)-1] }

// ShareBelow returns the fraction of transistors with width strictly below
// w: the "Mmin / M" estimate for a threshold at w.
func (d *Distribution) ShareBelow(w float64) float64 {
	var acc numeric.Kahan
	for i := range d.widths {
		if d.widths[i] < w {
			acc.Add(d.probs[i])
		}
	}
	return acc.Sum()
}

// Scale returns the distribution mapped to another technology node under
// the paper's rule: widths scale linearly with the node while the CNT pitch
// stays fixed.
func (d *Distribution) Scale(n tech.Node) (*Distribution, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	ws := make([]float64, len(d.widths))
	for i, w := range d.widths {
		ws[i] = n.ScaleWidth(w)
	}
	return New(ws, d.probs)
}

// UpsizedMean returns the mean width after applying the upsizing function
// U_Wt(W) = max(W, Wt) of Eq. 2.4 to every transistor.
func (d *Distribution) UpsizedMean(wt float64) float64 {
	var acc numeric.Kahan
	for i := range d.widths {
		acc.Add(math.Max(d.widths[i], wt) * d.probs[i])
	}
	return acc.Sum()
}

// Sample draws one transistor width.
func (d *Distribution) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	var acc float64
	for i := range d.probs {
		acc += d.probs[i]
		if u < acc {
			return d.widths[i]
		}
	}
	return d.widths[len(d.widths)-1]
}

// Histogram renders the distribution into a stat.Histogram with the paper's
// 40 nm bins (Fig. 2.2a) scaled to the distribution's range.
func (d *Distribution) Histogram(binWidth float64) (*stat.Histogram, error) {
	if !(binWidth > 0) {
		return nil, fmt.Errorf("widthdist: bin width %g must be positive", binWidth)
	}
	lo := binWidth * math.Floor(d.MinWidth()/binWidth)
	hi := binWidth * math.Ceil(d.MaxWidth()/binWidth)
	n := int(math.Round((hi - lo) / binWidth))
	if n < 1 {
		n = 1
	}
	h, err := stat.NewHistogram(numeric.Linspace(lo, hi, n+1))
	if err != nil {
		return nil, err
	}
	for i := range d.widths {
		h.AddWeighted(d.widths[i], d.probs[i])
	}
	return h, nil
}
