// Package place performs the row placement behind the paper's Section 3.3
// numbers: cells are abutted into fixed-width standard-cell rows, and the
// placement yields the two quantities the correlation model consumes —
// Pmin-CNFET, the linear density of critical (minimum-size) CNFETs along a
// row (1.8 FETs/µm in the paper's OpenRISC design), and the lateral offset
// usage of those devices in global row coordinates.
//
//yield:compute
package place

import (
	"errors"
	"fmt"
	"sort"

	"github.com/cnfet/yieldlab/internal/celllib"
	"github.com/cnfet/yieldlab/internal/netlist"
	"github.com/cnfet/yieldlab/internal/rowyield"
)

// Instance is one placed cell.
type Instance struct {
	// Cell is the library cell name.
	Cell string
	// Row is the placement row index.
	Row int
	// XNM is the left edge within the row.
	XNM float64
}

// Placement is a row-based placement of a netlist.
type Placement struct {
	// Rows holds the placed instances, row by row, in x order.
	Rows [][]Instance
	// RowWidthNM is the target row capacity.
	RowWidthNM float64

	lib *celllib.Library
}

// PlaceRows greedily fills rows of the given width with the netlist's
// instances in a deterministic shuffled order (mixing cell types within
// rows, as a real placer's result would).
func PlaceRows(lib *celllib.Library, nl *netlist.Netlist, rowWidthNM float64, seed uint64) (*Placement, error) {
	if lib == nil {
		return nil, errors.New("place: nil library")
	}
	if nl == nil {
		return nil, errors.New("place: nil netlist")
	}
	if !(rowWidthNM > 0) {
		return nil, fmt.Errorf("place: row width %g must be positive", rowWidthNM)
	}
	p := &Placement{RowWidthNM: rowWidthNM, lib: lib}
	var row []Instance
	x := 0.0
	rowIdx := 0
	for _, name := range nl.ExpandShuffled(seed) {
		c, err := lib.Cell(name)
		if err != nil {
			return nil, err
		}
		if c.WidthNM > rowWidthNM {
			return nil, fmt.Errorf("place: cell %s (%g nm) wider than row (%g nm)", name, c.WidthNM, rowWidthNM)
		}
		if x+c.WidthNM > rowWidthNM {
			p.Rows = append(p.Rows, row)
			row = nil
			x = 0
			rowIdx++
		}
		row = append(row, Instance{Cell: name, Row: rowIdx, XNM: x})
		x += c.WidthNM
	}
	if len(row) > 0 {
		p.Rows = append(p.Rows, row)
	}
	return p, nil
}

// NumRows returns the row count.
func (p *Placement) NumRows() int { return len(p.Rows) }

// Instances returns the total placed instance count.
func (p *Placement) Instances() int {
	n := 0
	for _, r := range p.Rows {
		n += len(r)
	}
	return n
}

// CriticalFET is one below-Wmin n-type device in row coordinates.
type CriticalFET struct {
	Row int
	// XNM is the device's gate position along the row.
	XNM float64
	// YOffsetNM is the lateral offset of its active region.
	YOffsetNM float64
	// WidthNM is the (pre-upsizing) device width.
	WidthNM float64
}

// CriticalNFETs enumerates all critical n-type devices of the placement.
func (p *Placement) CriticalNFETs(wminNM float64) ([]CriticalFET, error) {
	if !(wminNM > 0) {
		return nil, fmt.Errorf("place: Wmin %g must be positive", wminNM)
	}
	var out []CriticalFET
	for _, row := range p.Rows {
		for _, inst := range row {
			c, err := p.lib.Cell(inst.Cell)
			if err != nil {
				return nil, err
			}
			for _, t := range c.Transistors {
				if t.Type != celllib.NFET || t.WidthNM >= wminNM {
					continue
				}
				out = append(out, CriticalFET{
					Row:       inst.Row,
					XNM:       inst.XNM + (float64(t.Column)+0.6)*c.PolyPitchNM,
					YOffsetNM: t.YOffsetNM,
					WidthNM:   t.WidthNM,
				})
			}
		}
	}
	return out, nil
}

// CriticalDensityPerUM returns Pmin-CNFET: critical n-type devices per µm
// of placed row length.
func (p *Placement) CriticalDensityPerUM(wminNM float64) (float64, error) {
	fets, err := p.CriticalNFETs(wminNM)
	if err != nil {
		return 0, err
	}
	var length float64
	for _, row := range p.Rows {
		for _, inst := range row {
			c, err := p.lib.Cell(inst.Cell)
			if err != nil {
				return 0, err
			}
			length += c.WidthNM
		}
	}
	if length == 0 {
		return 0, errors.New("place: empty placement")
	}
	return float64(len(fets)) / (length / 1000), nil
}

// CriticalOffsetDist returns the offset distribution of the placed critical
// devices — the empirical input to the DirectionalUnaligned row model.
func (p *Placement) CriticalOffsetDist(wminNM float64) (rowyield.OffsetDist, error) {
	fets, err := p.CriticalNFETs(wminNM)
	if err != nil {
		return rowyield.OffsetDist{}, err
	}
	if len(fets) == 0 {
		return rowyield.OffsetDist{}, errors.New("place: no critical devices below Wmin")
	}
	weights := make(map[float64]float64)
	for _, f := range fets {
		weights[f.YOffsetNM]++
	}
	offsets := make([]float64, 0, len(weights))
	for off := range weights {
		offsets = append(offsets, off)
	}
	sort.Float64s(offsets)
	probs := make([]float64, len(offsets))
	for i, off := range offsets {
		probs[i] = weights[off]
	}
	return rowyield.NewOffsetDist(offsets, probs)
}

// ChipYieldResult summarizes a full-chip correlated-yield evaluation built
// on placement statistics (the Section 3.1 chain: density → MRmin → KR →
// yield).
type ChipYieldResult struct {
	// DensityPerUM is the measured Pmin-CNFET.
	DensityPerUM float64
	// MRmin is the per-row correlated device count (Eq. 3.2).
	MRmin float64
	// KRows is the independent row count Mmin/MRmin.
	KRows float64
	// RowPF is the aligned-row failure probability (= devicePF).
	RowPF float64
	// Yield is the chip-level CNT-count-limited yield (Eq. 3.1).
	Yield float64
}

// CorrelatedChipYield evaluates the aligned-active chip yield using this
// placement's measured critical-device density: devicePF is the analytic
// failure probability of a Wmin-sized device, lcntNM the CNT length, and
// chipMmin the number of minimum-size devices on the full chip (the
// placement itself is a statistical sample, not the whole chip).
func (p *Placement) CorrelatedChipYield(devicePF, wminNM, lcntNM, chipMmin float64) (ChipYieldResult, error) {
	if devicePF < 0 || devicePF > 1 {
		return ChipYieldResult{}, fmt.Errorf("place: devicePF %g out of [0,1]", devicePF)
	}
	if !(chipMmin > 0) {
		return ChipYieldResult{}, fmt.Errorf("place: chip Mmin %g must be positive", chipMmin)
	}
	density, err := p.CriticalDensityPerUM(wminNM)
	if err != nil {
		return ChipYieldResult{}, err
	}
	if !(density > 0) {
		return ChipYieldResult{}, errors.New("place: no critical devices in placement")
	}
	mrmin, err := rowyield.MRmin(lcntNM, density)
	if err != nil {
		return ChipYieldResult{}, err
	}
	kr := chipMmin / mrmin
	y, err := rowyield.CorrelatedYield(kr, devicePF)
	if err != nil {
		return ChipYieldResult{}, err
	}
	return ChipYieldResult{
		DensityPerUM: density,
		MRmin:        mrmin,
		KRows:        kr,
		RowPF:        devicePF,
		Yield:        y,
	}, nil
}
