package place

import (
	"math"
	"testing"

	"github.com/cnfet/yieldlab/internal/celllib"
	"github.com/cnfet/yieldlab/internal/netlist"
)

func placed(t *testing.T, instances int) (*celllib.Library, *Placement) {
	t.Helper()
	lib, err := celllib.NangateLike45()
	if err != nil {
		t.Fatal(err)
	}
	nl, err := netlist.OpenRISCLike(lib, instances)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PlaceRows(lib, nl, 50_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	return lib, p
}

func TestPlaceRowsBasics(t *testing.T) {
	_, p := placed(t, 20_000)
	if p.NumRows() < 100 {
		t.Fatalf("rows: %d", p.NumRows())
	}
	if p.Instances() < 19_000 {
		t.Fatalf("instances: %d", p.Instances())
	}
	// Rows respect capacity and x-ordering.
	for _, row := range p.Rows {
		x := -1.0
		var end float64
		for _, inst := range row {
			if inst.XNM <= x {
				t.Fatal("instances out of order")
			}
			x = inst.XNM
			end = inst.XNM
		}
		if end > 50_000 {
			t.Fatalf("row overflows: %v", end)
		}
	}
}

func TestPlaceRowsErrors(t *testing.T) {
	lib, _ := celllib.NangateLike45()
	nl, _ := netlist.OpenRISCLike(lib, 100)
	if _, err := PlaceRows(nil, nl, 1000, 1); err == nil {
		t.Error("nil library")
	}
	if _, err := PlaceRows(lib, nil, 1000, 1); err == nil {
		t.Error("nil netlist")
	}
	if _, err := PlaceRows(lib, nl, 0, 1); err == nil {
		t.Error("zero row width")
	}
	if _, err := PlaceRows(lib, nl, 100, 1); err == nil {
		t.Error("row narrower than cells")
	}
}

// The paper's Section 3.3 density check: the placed OpenRISC design has a
// critical-device density of order 1–2 FETs/µm (the paper measured 1.8).
func TestCriticalDensityBand(t *testing.T) {
	_, p := placed(t, 20_000)
	d, err := p.CriticalDensityPerUM(155)
	if err != nil {
		t.Fatal(err)
	}
	if d < 1.0 || d > 2.2 {
		t.Fatalf("critical density %.2f /µm, want ≈ 1.4 (paper: 1.8)", d)
	}
	// A threshold at the minimum width leaves no critical devices at all
	// (strict inequality).
	d2, err := p.CriticalDensityPerUM(celllib.MinWidthNM)
	if err != nil {
		t.Fatal(err)
	}
	if d2 != 0 {
		t.Fatalf("density below min width should be zero: %v", d2)
	}
}

func TestCriticalOffsetDistSpansGrid(t *testing.T) {
	_, p := placed(t, 20_000)
	od, err := p.CriticalOffsetDist(109)
	if err != nil {
		t.Fatal(err)
	}
	if od.DistinctCount() < 8 {
		t.Fatalf("distinct offsets: %d", od.DistinctCount())
	}
	var sum float64
	for _, pr := range od.Probs {
		sum += pr
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("offset probs sum: %v", sum)
	}
}

func TestCriticalNFETsCoordinates(t *testing.T) {
	_, p := placed(t, 5_000)
	fets, err := p.CriticalNFETs(155)
	if err != nil {
		t.Fatal(err)
	}
	if len(fets) == 0 {
		t.Fatal("no critical FETs found")
	}
	for _, f := range fets {
		if f.XNM < 0 || f.XNM > 50_000 {
			t.Fatalf("FET x out of row: %v", f.XNM)
		}
		if f.WidthNM >= 155 {
			t.Fatalf("non-critical FET reported: %v", f.WidthNM)
		}
		if f.Row < 0 || f.Row >= p.NumRows() {
			t.Fatalf("bad row: %d", f.Row)
		}
	}
	if _, err := p.CriticalNFETs(0); err == nil {
		t.Error("zero Wmin")
	}
	if _, err := p.CriticalOffsetDist(celllib.MinWidthNM); err == nil {
		t.Error("threshold with no critical devices should error")
	}
}

// End-to-end chain: placement density → MRmin → KR → correlated chip
// yield. At the budgeted device pF the chip must clear 90%.
func TestCorrelatedChipYield(t *testing.T) {
	_, p := placed(t, 20_000)
	res, err := p.CorrelatedChipYield(1.47e-8, 142.7, 200_000, 3.3e7)
	if err != nil {
		t.Fatal(err)
	}
	if res.MRmin < 200 || res.MRmin > 450 {
		t.Fatalf("MRmin: %v", res.MRmin)
	}
	if res.KRows <= 0 || res.KRows > 3.3e7 {
		t.Fatalf("KR: %v", res.KRows)
	}
	if res.Yield < 0.995 {
		// 1.47e-8 × KR ≈ 1.47e-8 × 1.2e5 ≈ 1.8e-3 failure probability.
		t.Fatalf("correlated yield: %v", res.Yield)
	}
	// Errors.
	if _, err := p.CorrelatedChipYield(2, 142.7, 200_000, 1e7); err == nil {
		t.Error("bad devicePF")
	}
	if _, err := p.CorrelatedChipYield(0.1, 142.7, 200_000, 0); err == nil {
		t.Error("zero Mmin")
	}
	if _, err := p.CorrelatedChipYield(0.1, celllib.MinWidthNM, 200_000, 1e7); err == nil {
		t.Error("no critical devices")
	}
}

func TestPlacementDeterminism(t *testing.T) {
	_, p1 := placed(t, 3_000)
	_, p2 := placed(t, 3_000)
	if p1.NumRows() != p2.NumRows() {
		t.Fatal("row count differs")
	}
	for i := range p1.Rows {
		for j := range p1.Rows[i] {
			if p1.Rows[i][j] != p2.Rows[i][j] {
				t.Fatal("placement not deterministic")
			}
		}
	}
}
