package obs

import "sync/atomic"

// MCCounters aggregates Monte Carlo engine progress for one span. The
// fields are atomics, but the engine does not touch them per round: each
// worker accumulates plain local counters and flushes them once at worker
// exit, so the //yield:noalloc round loops stay free of atomic traffic and
// the obs-overhead ratio gate stays honest.
type MCCounters struct {
	// Rounds counts completed simulation rounds.
	Rounds atomic.Uint64
	// Batches counts work batches claimed from the engine's queue.
	Batches atomic.Uint64
	// ScratchAllocs counts scratch-growth events in round state (capacity
	// misses, hash-set growth) — the allocations the pre-sizing in
	// NewRoundState exists to avoid. Non-zero steady-state values flag a
	// sizing regression.
	ScratchAllocs atomic.Uint64
}

// ScratchCounter is implemented by round states that track their scratch
// growth; the montecarlo engine folds the count into MCCounters at worker
// exit when the state implements it.
type ScratchCounter interface {
	// ScratchAllocs returns the cumulative scratch-growth events of this
	// state's lifetime.
	ScratchAllocs() uint64
}
