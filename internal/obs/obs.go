// Package obs is the stack's zero-dependency observability layer: a
// context-carried tracer producing nested spans from the HTTP edge down to
// the Monte Carlo round loop, per-worker counters for the zero-allocation
// hot paths, fixed-bucket latency histograms for the Prometheus endpoint,
// and a slow-query ring buffer.
//
// # Ownership of the wall clock
//
// The compute packages (query, montecarlo, rowyield, renewal, ...) are held
// to determinism by the yieldvet analyzer: time.Now is banned there because
// wall-clock reads leaking into results would break the canonical
// fingerprint / ETag identity. obs owns the clock the same way internal/rng
// owns randomness — all timing happens inside this package, and compute
// code only calls Start/End, which touch nothing but the span tree.
//
// # Zero perturbation
//
// Tracing must never change results. Span creation is nil-safe end to end:
// with no Tracer on the context every obs call is a no-op on nil, so
// untraced paths pay one context lookup and nothing else. Counters are
// accumulated per worker and flushed once per worker lifetime, so the
// //yield:noalloc round loops see no atomic traffic and no allocation.
// Estimates are bit-identical with tracing on or off; the CI obs-overhead
// ratio gate (BENCH_BASELINE.json) holds the instrumented round loop to
// ≤ 1.05× the uninstrumented one.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects a forest of spans for one traced operation (typically one
// HTTP request or one CLI invocation). A Tracer is safe for concurrent use:
// sweep workers evaluating specs in parallel may all start root spans on
// the same tracer.
type Tracer struct {
	start time.Time

	mu    sync.Mutex
	roots []*Span

	cost atomic.Bool
}

// New returns an empty tracer whose trace timestamps are relative to now.
func New() *Tracer {
	return &Tracer{start: time.Now()}
}

// EnableCost opts the tracer into cost reporting: query evaluations attach
// a CostBreakdown to their results. Cost is separate from tracing itself so
// a server can trace every request (feeding histograms and the slowlog)
// while timing fields stay out of the default, cacheable response bodies.
// Nil-safe.
func (t *Tracer) EnableCost() {
	if t != nil {
		t.cost.Store(true)
	}
}

// CostEnabled reports whether EnableCost was called. Nil-safe (false).
func (t *Tracer) CostEnabled() bool {
	return t != nil && t.cost.Load()
}

// Roots returns the tracer's root spans in start order. Safe to call
// concurrently, but span contents should only be read after the spans
// have ended.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// ctxKey is the context key space of this package.
type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// WithTracer attaches a tracer to the context; subsequent Start calls under
// this context record spans on it.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the context's tracer, nil when the context is untraced.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// Start opens a span named name under the context's current span (or as a
// root when there is none) and returns a context carrying the new span as
// current. With no tracer on the context it returns (ctx, nil) without
// allocating; the nil *Span accepts every method as a no-op, so call sites
// need no conditionals.
//
// Callers that want sibling spans rather than nesting simply keep using
// their original context: Start never mutates ctx, it derives.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey).(*Span)
	sp := &Span{tracer: t, name: name, start: time.Now()}
	t.mu.Lock()
	if parent != nil {
		parent.children = append(parent.children, sp)
	} else {
		t.roots = append(t.roots, sp)
	}
	t.mu.Unlock()
	return context.WithValue(ctx, spanKey, sp), sp
}

// StartLeaf opens a span exactly like Start but returns only the span: the
// deliberate-leaf form for instrumenting a stretch of work that starts no
// spans of its own (an MC round loop, a sweep kernel). Using StartLeaf
// instead of discarding Start's derived context makes the intent
// machine-checkable — the spanbalance analyzer flags a discarded derived
// context, because under an accidentally-dropped context every nested
// Start silently becomes a sibling. Nil-safe like Start.
func StartLeaf(ctx context.Context, name string) *Span {
	_, sp := Start(ctx, name)
	return sp
}

// Detach returns a context carrying no tracer and no current span, for
// handing to work that outlives the traced operation — e.g. async jobs
// that keep running after their submitting request responds. Without
// detachment, spans started by the orphaned work would keep mutating a
// span tree the request handler is already reading (a data race), since
// context.WithoutCancel severs cancellation but keeps values. Values
// other than the tracer state are preserved.
func Detach(ctx context.Context) context.Context {
	if TracerFrom(ctx) == nil {
		return ctx
	}
	ctx = context.WithValue(ctx, tracerKey, (*Tracer)(nil))
	return context.WithValue(ctx, spanKey, (*Span)(nil))
}

// Attr is one key/value span attribute.
type Attr struct {
	// Key names the attribute ("rounds", "tilt_theta", ...).
	Key string
	// Value holds the attribute; keep it a JSON-friendly scalar.
	Value any
}

// Span is one timed operation in a trace tree. All methods are nil-safe, so
// instrumented code never branches on whether tracing is active. A span is
// mutated by the goroutine that created it; read it after End.
type Span struct {
	tracer   *Tracer
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span

	mcOnce sync.Once
	mc     *MCCounters
}

// SetName renames the span — used to refine a generic stage name once its
// outcome is known (e.g. "sweep" → "sweep.cache_hit"). Nil-safe.
func (s *Span) SetName(name string) {
	if s != nil {
		s.name = name
	}
}

// SetAttr records an attribute, replacing any earlier value for the key.
// Nil-safe.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// MC returns the span's Monte Carlo counter block, allocating it on first
// use. Hand it to montecarlo.Options.Counters; End folds non-zero counters
// into span attributes. Returns nil on a nil span, which the engine treats
// as "don't count".
func (s *Span) MC() *MCCounters {
	if s == nil {
		return nil
	}
	s.mcOnce.Do(func() { s.mc = &MCCounters{} })
	return s.mc
}

// End stamps the span's duration and folds any counters into attributes.
// Subsequent Ends are no-ops; nil-safe.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	if s.mc != nil {
		if v := s.mc.Rounds.Load(); v > 0 {
			if _, ok := s.AttrValue("rounds"); !ok {
				s.SetAttr("rounds", v)
			}
		}
		if v := s.mc.Batches.Load(); v > 0 {
			s.SetAttr("mc_batches", v)
		}
		if v := s.mc.ScratchAllocs.Load(); v > 0 {
			s.SetAttr("scratch_allocs", v)
		}
	}
}

// Name returns the span's (possibly refined) name. Nil-safe ("").
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's duration (zero before End). Nil-safe.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.dur
}

// Attrs returns the span's attributes in insertion order. Nil-safe.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	return s.attrs
}

// AttrValue looks up one attribute by key. Nil-safe (not found).
func (s *Span) AttrValue(key string) (any, bool) {
	if s == nil {
		return nil, false
	}
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}

// Children returns the span's child spans in start order. Read after the
// subtree has ended. Nil-safe.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return append([]*Span(nil), s.children...)
}
