package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a lock-free fixed-bucket histogram in the Prometheus mold:
// upper bounds are inclusive ("le"), an implicit +Inf bucket catches the
// rest, and Sum/Count ride along. Observe is wait-free (two atomic adds and
// a CAS loop for the float sum), so request and stage recording never
// serializes the server's hot path.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// NewHistogram builds a histogram over the given bucket upper bounds. The
// bounds are sorted and deduplicated defensively; non-finite bounds are
// dropped (+Inf is always implicit).
func NewHistogram(bounds ...float64) *Histogram {
	clean := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if !math.IsInf(b, 0) && !math.IsNaN(b) {
			clean = append(clean, b)
		}
	}
	sort.Float64s(clean)
	uniq := clean[:0]
	for i, b := range clean {
		if i == 0 || b != clean[i-1] {
			uniq = append(uniq, b)
		}
	}
	return &Histogram{bounds: uniq, counts: make([]atomic.Uint64, len(uniq)+1)}
}

// DefaultLatencyBuckets returns the server's request/stage latency bounds in
// seconds: 100 µs to ~30 s in roughly 1-2.5-5 decades, wide enough for both
// cache-hit microsecond responses and multi-second cold rare-event runs.
func DefaultLatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bound ≥ v is v's bucket (le is inclusive); misses land in +Inf.
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		sum := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(sum)) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time view of a histogram, cumulative the
// way the Prometheus text format wants it.
type HistogramSnapshot struct {
	// Bounds are the finite bucket upper bounds.
	Bounds []float64
	// Cumulative[i] counts observations ≤ Bounds[i]; the final extra entry
	// is the +Inf bucket and equals Count.
	Cumulative []uint64
	// Sum is the sum of all observed values.
	Sum float64
	// Count is the number of observations.
	Count uint64
}

// Snapshot returns the histogram's current state. Under concurrent Observe
// traffic the snapshot is a consistent-enough approximation (counts may lag
// the sum by in-flight observations); after writers quiesce it is exact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]uint64, len(h.counts)),
		Sum:        math.Float64frombits(h.sumBits.Load()),
		Count:      h.count.Load(),
	}
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		snap.Cumulative[i] = running
	}
	// Buckets and the count are separate atomics, so an in-flight Observe
	// can be visible in one and not the other; pin Count to the bucket total
	// when it lags so +Inf == _count and the buckets stay monotone.
	if running > snap.Count {
		snap.Count = running
	}
	snap.Cumulative[len(snap.Cumulative)-1] = snap.Count
	return snap
}
