package obs

import (
	"encoding/json"
	"io"
	"time"
)

// traceEvent is one Chrome trace_event entry: a complete ("X") event with
// microsecond timestamp and duration. The format is the lowest common
// denominator of trace viewers — chrome://tracing, Perfetto and speedscope
// all open it — which keeps the exporter dependency-free.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteTraceEvents renders the tracer's span forest in Chrome trace_event
// JSON format (the {"traceEvents": [...]} object form). Each root span gets
// its own tid so concurrent sweep evaluations lay out as parallel tracks;
// span attributes become event args. Call after the traced work is done.
func (t *Tracer) WriteTraceEvents(w io.Writer) error {
	var events []traceEvent
	if t != nil {
		for i, root := range t.Roots() {
			events = appendEvents(events, root, t.start, i+1)
		}
	}
	if events == nil {
		events = []traceEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(map[string]any{"traceEvents": events})
}

// appendEvents walks one span subtree depth-first onto the event list.
func appendEvents(events []traceEvent, s *Span, origin time.Time, tid int) []traceEvent {
	if s == nil {
		return events
	}
	ev := traceEvent{
		Name: s.Name(),
		Ph:   "X",
		TS:   float64(s.start.Sub(origin)) / float64(time.Microsecond),
		Dur:  float64(s.Duration()) / float64(time.Microsecond),
		PID:  1,
		TID:  tid,
	}
	if attrs := s.Attrs(); len(attrs) > 0 {
		ev.Args = make(map[string]any, len(attrs))
		for _, a := range attrs {
			ev.Args[a.Key] = a.Value
		}
	}
	events = append(events, ev)
	for _, c := range s.Children() {
		events = appendEvents(events, c, origin, tid)
	}
	return events
}
