package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	ctx := context.Background()
	if tr := TracerFrom(ctx); tr != nil {
		t.Fatalf("tracer on a bare context: %v", tr)
	}
	ctx2, sp := Start(ctx, "anything")
	if sp != nil {
		t.Fatalf("span without tracer: %v", sp)
	}
	if ctx2 != ctx {
		t.Fatal("Start without tracer must not derive a context")
	}
	// Every method must be a no-op on nil.
	sp.SetName("x")
	sp.SetAttr("k", 1)
	sp.End()
	if sp.Name() != "" || sp.Duration() != 0 || sp.Attrs() != nil || sp.Children() != nil {
		t.Fatal("nil span accessors must return zero values")
	}
	if _, ok := sp.AttrValue("k"); ok {
		t.Fatal("nil span AttrValue must miss")
	}
	if sp.MC() != nil {
		t.Fatal("nil span MC must be nil")
	}
	var tr *Tracer
	tr.EnableCost()
	if tr.CostEnabled() {
		t.Fatal("nil tracer cost")
	}
	if tr.Roots() != nil {
		t.Fatal("nil tracer roots")
	}
}

func TestSpanTree(t *testing.T) {
	tr := New()
	ctx := WithTracer(context.Background(), tr)

	rootCtx, root := Start(ctx, "query.evaluate")
	// A child started from the root's context nests...
	_, sweep := Start(rootCtx, "sweep")
	sweep.SetName("sweep.cold")
	sweep.SetAttr("sweeps", uint64(3))
	sweep.End()
	// ...and a sibling started from the same context nests beside it.
	_, mc := Start(rootCtx, "mc.run")
	mc.SetAttr("method", "tilted")
	mc.SetAttr("method", "plain") // replacement, not duplication
	mc.End()
	root.End()
	root.End() // second End is a no-op

	roots := tr.Roots()
	if len(roots) != 1 || roots[0] != root {
		t.Fatalf("roots = %v", roots)
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "sweep.cold" || kids[1].Name() != "mc.run" {
		t.Fatalf("children = %v, %v", kids, len(kids))
	}
	if v, ok := kids[0].AttrValue("sweeps"); !ok || v.(uint64) != 3 {
		t.Fatalf("sweeps attr = %v %v", v, ok)
	}
	if v, _ := kids[1].AttrValue("method"); v != "plain" {
		t.Fatalf("method attr = %v", v)
	}
	if got := len(kids[1].Attrs()); got != 1 {
		t.Fatalf("SetAttr with same key must replace; have %d attrs", got)
	}
	if root.Duration() <= 0 {
		t.Fatal("ended root must have a positive duration")
	}
}

func TestConcurrentRootSpans(t *testing.T) {
	tr := New()
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := Start(ctx, "query.evaluate")
			sp.SetAttr("i", 1)
			sp.End()
		}()
	}
	wg.Wait()
	if got := len(tr.Roots()); got != 32 {
		t.Fatalf("roots = %d, want 32", got)
	}
}

func TestCostFlag(t *testing.T) {
	tr := New()
	if tr.CostEnabled() {
		t.Fatal("cost on by default")
	}
	tr.EnableCost()
	if !tr.CostEnabled() {
		t.Fatal("cost not enabled")
	}
}

func TestCountersFoldIntoAttrs(t *testing.T) {
	tr := New()
	ctx := WithTracer(context.Background(), tr)
	_, sp := Start(ctx, "mc.run")
	c := sp.MC()
	if c == nil {
		t.Fatal("nil counters on a live span")
	}
	if sp.MC() != c {
		t.Fatal("MC must be idempotent")
	}
	c.Rounds.Add(4096)
	c.Batches.Add(64)
	sp.End()
	if v, _ := sp.AttrValue("rounds"); v.(uint64) != 4096 {
		t.Fatalf("rounds attr = %v", v)
	}
	if v, _ := sp.AttrValue("mc_batches"); v.(uint64) != 64 {
		t.Fatalf("mc_batches attr = %v", v)
	}
	if _, ok := sp.AttrValue("scratch_allocs"); ok {
		t.Fatal("zero counters must not produce attrs")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0.01, 0.1, 1)
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le is inclusive: 0.01 lands in the 0.01 bucket.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if s.Cumulative[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (all %v)", i, s.Cumulative[i], w, s.Cumulative)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.Sum-2.565) > 1e-12 {
		t.Fatalf("sum = %g", s.Sum)
	}
}

func TestHistogramBoundsSanitized(t *testing.T) {
	h := NewHistogram(1, 0.5, 1, math.Inf(1), math.NaN())
	s := h.Snapshot()
	if len(s.Bounds) != 2 || s.Bounds[0] != 0.5 || s.Bounds[1] != 1 {
		t.Fatalf("bounds = %v", s.Bounds)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets()...)
	const goroutines, each = 16, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(float64(g*each+i) * 1e-6)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*each {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*each)
	}
	if s.Cumulative[len(s.Cumulative)-1] != s.Count {
		t.Fatalf("+Inf bucket %d != count %d", s.Cumulative[len(s.Cumulative)-1], s.Count)
	}
	for i := 1; i < len(s.Cumulative); i++ {
		if s.Cumulative[i] < s.Cumulative[i-1] {
			t.Fatalf("non-monotone cumulative buckets: %v", s.Cumulative)
		}
	}
	wantSum := 0.0
	for i := 0; i < goroutines*each; i++ {
		wantSum += float64(i) * 1e-6
	}
	if math.Abs(s.Sum-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum = %g, want %g", s.Sum, wantSum)
	}
}

func TestSlowLogThresholdAndRing(t *testing.T) {
	l := NewSlowLog(3, 10*time.Millisecond)
	l.Observe(5*time.Millisecond, SlowEntry{Route: "fast"})
	for i := 0; i < 5; i++ {
		l.Observe(time.Duration(20+i)*time.Millisecond, SlowEntry{Route: "slow", Status: 200 + i})
	}
	entries := l.Entries()
	if len(entries) != 3 {
		t.Fatalf("entries = %d, want ring capacity 3", len(entries))
	}
	// Newest first: statuses 204, 203, 202.
	for i, want := range []int{204, 203, 202} {
		if entries[i].Status != want {
			t.Fatalf("entry %d status = %d, want %d", i, entries[i].Status, want)
		}
	}
	if entries[0].DurationMS != 24 {
		t.Fatalf("duration = %g ms", entries[0].DurationMS)
	}
	observed, recorded := l.Counts()
	if observed != 6 || recorded != 5 {
		t.Fatalf("counts = %d/%d", observed, recorded)
	}
}

func TestSlowLogRecordAll(t *testing.T) {
	l := NewSlowLog(0, -1)
	if l.Threshold() != 0 {
		t.Fatalf("threshold = %v", l.Threshold())
	}
	if l.Capacity() != DefaultSlowLogEntries {
		t.Fatalf("capacity = %d", l.Capacity())
	}
	l.Observe(0, SlowEntry{Route: "r"})
	if got := l.Entries(); len(got) != 1 || got[0].Route != "r" {
		t.Fatalf("entries = %v", got)
	}
	var nilLog *SlowLog
	nilLog.Observe(time.Second, SlowEntry{})
	if nilLog.Entries() != nil {
		t.Fatal("nil slowlog entries")
	}
}

func TestStagesFlatten(t *testing.T) {
	tr := New()
	ctx := WithTracer(context.Background(), tr)
	rootCtx, root := Start(ctx, "query.evaluate")
	_, sweep := Start(rootCtx, "sweep.cold")
	sweep.End()
	_, mc := Start(rootCtx, "mc.run")
	mc.End()
	root.End()
	stages := Stages(root)
	if len(stages) != 3 || stages[0].Name != "query.evaluate" || stages[1].Name != "sweep.cold" || stages[2].Name != "mc.run" {
		t.Fatalf("stages = %+v", stages)
	}
	if Stages(nil) != nil {
		t.Fatal("nil root stages")
	}
}

func TestWriteTraceEvents(t *testing.T) {
	tr := New()
	ctx := WithTracer(context.Background(), tr)
	rootCtx, root := Start(ctx, "query.evaluate")
	_, mc := Start(rootCtx, "mc.run")
	mc.SetAttr("rounds", uint64(64))
	mc.End()
	root.End()
	_, second := Start(ctx, "query.evaluate")
	second.End()

	var buf bytes.Buffer
	if err := tr.WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not valid trace JSON: %v\n%s", err, buf.String())
	}
	if len(out.TraceEvents) != 3 {
		t.Fatalf("events = %d", len(out.TraceEvents))
	}
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" || ev.PID != 1 || ev.TID < 1 {
			t.Fatalf("malformed event %+v", ev)
		}
	}
	if out.TraceEvents[1].Name != "mc.run" || out.TraceEvents[1].Args["rounds"].(float64) != 64 {
		t.Fatalf("mc event = %+v", out.TraceEvents[1])
	}
	// The two roots must land on distinct tracks.
	if out.TraceEvents[0].TID == out.TraceEvents[2].TID {
		t.Fatal("distinct roots share a tid")
	}

	// An empty tracer still writes a valid document.
	buf.Reset()
	if err := New().WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil || len(out.TraceEvents) != 0 {
		t.Fatalf("empty trace: %v %s", err, buf.String())
	}
}

func TestStartLeaf(t *testing.T) {
	tr := New()
	ctx := WithTracer(context.Background(), tr)
	rootCtx, root := Start(ctx, "query.evaluate")
	leaf := StartLeaf(rootCtx, "mc.run")
	leaf.SetAttr("rounds", uint64(100))
	leaf.End()
	root.End()

	kids := root.Children()
	if len(kids) != 1 || kids[0] != leaf {
		t.Fatalf("leaf must nest under the parent span: %v", kids)
	}
	if v, ok := leaf.AttrValue("rounds"); !ok || v.(uint64) != 100 {
		t.Fatalf("rounds attr = %v %v", v, ok)
	}
	// Without a tracer StartLeaf is a nil no-op, like Start.
	if sp := StartLeaf(context.Background(), "x"); sp != nil {
		t.Fatalf("StartLeaf without tracer: %v", sp)
	}
}

func TestDetach(t *testing.T) {
	tr := New()
	type extraKey struct{}
	ctx := context.WithValue(WithTracer(context.Background(), tr), extraKey{}, "kept")
	rootCtx, root := Start(ctx, "submit")
	root.End()

	det := Detach(rootCtx)
	if TracerFrom(det) != nil {
		t.Fatal("detached context must carry no tracer")
	}
	if det.Value(extraKey{}) != "kept" {
		t.Fatal("Detach must preserve non-tracer values")
	}
	// Spans started under a detached context vanish instead of mutating
	// the original tracer's tree.
	_, orphan := Start(det, "job.run")
	if orphan != nil {
		t.Fatalf("span under detached context: %v", orphan)
	}
	if got := len(tr.Roots()); got != 1 {
		t.Fatalf("detached work leaked into the span tree: %d roots", got)
	}
	// Detaching an untraced context is the identity.
	bare := context.Background()
	if Detach(bare) != bare {
		t.Fatal("Detach of an untraced context must be a no-op")
	}
}
