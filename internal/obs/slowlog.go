package obs

import (
	"sync"
	"time"
)

// DefaultSlowLogThreshold is the recording cutoff when a SlowLog is built
// with threshold 0.
const DefaultSlowLogThreshold = 25 * time.Millisecond

// DefaultSlowLogEntries is the ring capacity when a SlowLog is built with
// capacity ≤ 0.
const DefaultSlowLogEntries = 64

// StageDur is one flattened span of a slow request: the stage name and its
// wall time.
type StageDur struct {
	// Name is the span name ("sweep.cold", "mc.run", ...).
	Name string `json:"name"`
	// MS is the stage duration in milliseconds.
	MS float64 `json:"ms"`
}

// Stages flattens a span tree into stage durations, depth-first in start
// order — the per-stage view the slowlog and the stage histograms share.
func Stages(root *Span) []StageDur {
	var out []StageDur
	var walk func(s *Span)
	walk = func(s *Span) {
		if s == nil {
			return
		}
		out = append(out, StageDur{Name: s.Name(), MS: float64(s.Duration()) / float64(time.Millisecond)})
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(root)
	return out
}

// SlowEntry is one recorded slow request.
type SlowEntry struct {
	// Time is when the request completed.
	Time time.Time `json:"time"`
	// Route is the matched route pattern.
	Route string `json:"route,omitempty"`
	// RequestID is the request's correlation id (also in the structured log
	// and the X-Request-ID response header).
	RequestID string `json:"request_id,omitempty"`
	// Fingerprint is the canonical spec fingerprint, when the request
	// evaluated one.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Status is the HTTP status code.
	Status int `json:"status,omitempty"`
	// DurationMS is the total wall time in milliseconds.
	DurationMS float64 `json:"duration_ms"`
	// Stages attributes the wall time to evaluation stages, when the
	// request was traced.
	Stages []StageDur `json:"stages,omitempty"`
}

// SlowLog is a fixed-size ring of the most recent requests at or above a
// duration threshold. Recording is O(1) and bounded, so the slowlog can stay
// on for the server's whole lifetime; the ring holds the newest entries and
// forgets the oldest, which is the retention policy (DESIGN.md §9).
type SlowLog struct {
	threshold time.Duration

	mu       sync.Mutex
	ring     []SlowEntry
	next     int
	filled   bool
	observed uint64
	recorded uint64
}

// NewSlowLog builds a slowlog holding up to capacity entries at or above
// threshold. capacity ≤ 0 means DefaultSlowLogEntries; threshold 0 means
// DefaultSlowLogThreshold, and a negative threshold records every request
// (useful in tests and smoke checks).
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity <= 0 {
		capacity = DefaultSlowLogEntries
	}
	switch {
	case threshold == 0:
		threshold = DefaultSlowLogThreshold
	case threshold < 0:
		threshold = 0
	}
	return &SlowLog{threshold: threshold, ring: make([]SlowEntry, capacity)}
}

// Threshold returns the recording cutoff (0 = record everything).
func (l *SlowLog) Threshold() time.Duration { return l.threshold }

// Capacity returns the ring size.
func (l *SlowLog) Capacity() int { return len(l.ring) }

// Observe records the entry when d reaches the threshold. e.DurationMS is
// filled from d. Nil-safe.
func (l *SlowLog) Observe(d time.Duration, e SlowEntry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.observed++
	if d < l.threshold {
		return
	}
	l.recorded++
	e.DurationMS = float64(d) / float64(time.Millisecond)
	l.ring[l.next] = e
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.filled = true
	}
}

// Entries returns the recorded entries, newest first. Nil-safe.
func (l *SlowLog) Entries() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.filled {
		n = len(l.ring)
	}
	out := make([]SlowEntry, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, l.ring[(l.next-i+len(l.ring))%len(l.ring)])
	}
	return out
}

// Counts returns how many requests were observed and how many cleared the
// threshold over the slowlog's lifetime (recorded ≥ len(Entries()) once the
// ring wraps). Nil-safe.
func (l *SlowLog) Counts() (observed, recorded uint64) {
	if l == nil {
		return 0, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.observed, l.recorded
}
